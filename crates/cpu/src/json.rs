//! Std-only JSON emission for the CPU-side accounting types.
//!
//! One serialization shared by the fuzzer's `--json` sweeps, the bench
//! bins' `results/*.json` files and the tracer, replacing the hand-rolled
//! per-binary writers. Field names match the struct fields so the output
//! is greppable against the code.

use rodb_trace::Json;

use crate::breakdown::CpuBreakdown;
use crate::counters::CpuCounters;

impl CpuCounters {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("uops", self.uops)
            .set("seq_bytes", self.seq_bytes)
            .set("rand_misses", self.rand_misses)
            .set("l1_lines", self.l1_lines)
            .set("branch_mispredicts", self.branch_mispredicts)
            .set("io_requests", self.io_requests)
            .set("io_bytes", self.io_bytes)
            .set("io_switches", self.io_switches)
    }
}

impl CpuBreakdown {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("sys", self.sys)
            .set("usr_uop", self.usr_uop)
            .set("usr_l2", self.usr_l2)
            .set("usr_l1", self.usr_l1)
            .set("usr_rest", self.usr_rest)
            .set("total", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_json_round_trips() {
        let b = CpuBreakdown {
            sys: 1.0,
            usr_uop: 2.5,
            usr_l2: 0.5,
            usr_l1: 0.25,
            usr_rest: 0.125,
        };
        let j = b.to_json();
        assert_eq!(j.get("total").unwrap().as_f64(), Some(b.total()));
        let parsed = Json::parse(&j.pretty()).unwrap();
        assert_eq!(parsed.get("usr_l2").unwrap().as_f64(), Some(0.5));
        let c = CpuCounters {
            uops: 10.0,
            ..Default::default()
        };
        assert_eq!(c.to_json().get("uops").unwrap().as_f64(), Some(10.0));
    }
}
