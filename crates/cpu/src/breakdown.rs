//! Converting event counts into the paper's stacked CPU-time breakdown
//! (§4.1, Figure 6 right).
//!
//! * **sys** — kernel time executing I/O requests.
//! * **usr-uop** — minimum compute time: uops ÷ 3 per cycle on the Pentium 4.
//! * **usr-L2** — minimum stall waiting on memory→L2: sequential traffic is
//!   delivered by the hardware prefetcher at one line (128 B) per 128 cycles
//!   and *overlaps* with usr-uop (only the excess stalls); each random access
//!   stalls the full measured 380-cycle latency.
//! * **usr-L1** — upper bound on L2→L1 transfer stalls.
//! * **usr-rest** — branch mispredictions and remaining stall factors.

use rodb_types::HardwareConfig;

use crate::costs::CostParams;
use crate::counters::CpuCounters;

/// CPU time split the way the paper's Figures 6–9 plot it (all seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CpuBreakdown {
    pub sys: f64,
    pub usr_uop: f64,
    pub usr_l2: f64,
    pub usr_l1: f64,
    pub usr_rest: f64,
}

impl CpuBreakdown {
    /// Total CPU seconds (the height of the stacked bar).
    pub fn total(&self) -> f64 {
        self.sys + self.usr_uop + self.usr_l2 + self.usr_l1 + self.usr_rest
    }

    /// User-mode seconds only.
    pub fn user(&self) -> f64 {
        self.usr_uop + self.usr_l2 + self.usr_l1 + self.usr_rest
    }

    /// Compute the breakdown from counters on a given platform.
    pub fn from_counters(c: &CpuCounters, hw: &HardwareConfig, costs: &CostParams) -> CpuBreakdown {
        let clock = hw.clock_hz;
        let usr_uop = c.uops / hw.uops_per_cycle / clock;

        // Sequential memory→L2 transfer time; overlapped with computation,
        // only the excess shows up as stall (§4.1).
        let seq_transfer = c.seq_bytes / hw.mem_bytes_per_cycle / clock;
        let rand_stall = c.rand_misses * hw.random_miss_cycles / clock;
        let usr_l2 = (seq_transfer - usr_uop).max(0.0) + rand_stall;

        let usr_l1 = c.l1_lines * costs.l1_line_cycles / clock;

        let usr_rest =
            c.branch_mispredicts * costs.mispredict_cycles / clock + costs.rest_frac * usr_uop;

        let sys = (c.io_requests * costs.sys_cycles_per_request
            + (c.io_bytes / 1024.0) * costs.sys_cycles_per_kib
            + c.io_switches * costs.sys_cycles_per_switch)
            / clock;

        CpuBreakdown {
            sys,
            usr_uop,
            usr_l2,
            usr_l1,
            usr_rest,
        }
    }

    /// Scale all components (virtual row-count adjustment).
    pub fn scaled(&self, k: f64) -> CpuBreakdown {
        CpuBreakdown {
            sys: self.sys * k,
            usr_uop: self.usr_uop * k,
            usr_l2: self.usr_l2 * k,
            usr_l1: self.usr_l1 * k,
            usr_rest: self.usr_rest * k,
        }
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: &CpuBreakdown) {
        self.sys += other.sys;
        self.usr_uop += other.usr_uop;
        self.usr_l2 += other.usr_l2;
        self.usr_l1 += other.usr_l1;
        self.usr_rest += other.usr_rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareConfig {
        HardwareConfig::default()
    }

    #[test]
    fn uop_math_matches_paper() {
        // 9.6e9 uops at 3 per cycle on 3.2 GHz = 1 second.
        let c = CpuCounters {
            uops: 9.6e9,
            ..Default::default()
        };
        let b = CpuBreakdown::from_counters(&c, &hw(), &CostParams::default());
        assert!((b.usr_uop - 1.0).abs() < 1e-9);
        // usr-rest includes the rest_frac share of uop time.
        assert!((b.usr_rest - 0.35).abs() < 1e-9);
        assert_eq!(b.usr_l2, 0.0);
    }

    #[test]
    fn sequential_memory_overlaps_with_compute() {
        // 3.2 GB streamed at 1 B/cycle = 1 s of bus time.
        let mut c = CpuCounters {
            seq_bytes: 3.2e9,
            ..Default::default()
        };
        // With no compute, the whole second is exposed as L2 stall.
        let b = CpuBreakdown::from_counters(&c, &hw(), &CostParams::default());
        assert!((b.usr_l2 - 1.0).abs() < 1e-9);
        // With 0.6 s of compute, only 0.4 s remains exposed.
        c.uops = 0.6 * 3.0 * 3.2e9;
        let b = CpuBreakdown::from_counters(&c, &hw(), &CostParams::default());
        assert!((b.usr_l2 - 0.4).abs() < 1e-9);
        // With compute exceeding the transfer, no L2 stall at all.
        c.uops = 2.0 * 3.0 * 3.2e9;
        let b = CpuBreakdown::from_counters(&c, &hw(), &CostParams::default());
        assert_eq!(b.usr_l2, 0.0);
    }

    #[test]
    fn random_misses_always_stall() {
        let c = CpuCounters {
            uops: 9.6e9, // 1 s compute
            rand_misses: 3.2e9 / 380.0,
            ..Default::default()
        };
        let b = CpuBreakdown::from_counters(&c, &hw(), &CostParams::default());
        // Random stalls are not overlapped (≈1 s despite ample compute).
        assert!((b.usr_l2 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sys_accounts_requests_bytes_switches() {
        let c = CpuCounters {
            io_bytes: 9.5e9,
            io_requests: 9.5e9 / 131072.0,
            io_switches: 1.0,
            ..Default::default()
        };
        let b = CpuBreakdown::from_counters(&c, &hw(), &CostParams::default());
        // ≈ paper's ~5 s of system time for the 9.5 GB LINEITEM scan (Fig. 6).
        assert!(b.sys > 4.0 && b.sys < 6.5, "sys = {}", b.sys);
    }

    #[test]
    fn totals_and_scaling() {
        let c = CpuCounters {
            uops: 9.6e9,
            seq_bytes: 6.4e9,
            l1_lines: 1.0e7,
            branch_mispredicts: 1.0e6,
            io_bytes: 1.0e9,
            io_requests: 100.0,
            io_switches: 2.0,
            ..Default::default()
        };
        let b = CpuBreakdown::from_counters(&c, &hw(), &CostParams::default());
        let total = b.sys + b.usr_uop + b.usr_l2 + b.usr_l1 + b.usr_rest;
        assert!((b.total() - total).abs() < 1e-12);
        assert!((b.user() - (total - b.sys)).abs() < 1e-12);
        let s = b.scaled(3.0);
        assert!((s.total() - 3.0 * b.total()).abs() < 1e-9);
        // from_counters(scaled) == scaled(from_counters) except for the
        // nonlinear overlap term; with transfer ≥ uop both scale linearly.
        let b2 = CpuBreakdown::from_counters(&c.scaled(3.0), &hw(), &CostParams::default());
        assert!((b2.total() - s.total()).abs() < 1e-9);
    }
}
