//! CPU and memory-hierarchy cost model (§2.1.2 and §4.1 of the paper).
//!
//! Replaces the paper's PAPI measurement stack with deterministic event
//! accounting: the engine reports semantic work to a [`CpuMeter`], which
//! produces the exact stacked breakdown the paper plots — *sys*, *usr-uop*
//! (uops ÷ 3/cycle), *usr-L2* (prefetcher-aware memory stalls), *usr-L1*, and
//! *usr-rest* — via [`CpuBreakdown::from_counters`].

pub mod breakdown;
pub mod costs;
pub mod counters;
pub mod json;
pub mod meter;
pub mod phase;

pub use breakdown::CpuBreakdown;
pub use costs::{CostParams, OpCosts};
pub use counters::CpuCounters;
pub use meter::CpuMeter;
pub use phase::{CpuPhase, PhaseProfile};
