//! Figure 2: the average column-over-row speedup surface.
//!
//! "In this contour plot, each color represents a speedup range achieved by
//! a column system over a row system when performing a simple scan of a
//! relation, selecting 10% of the tuples and projecting 50% of the tuple
//! attributes. The x-axis is the tuple width ... the y-axis represents the
//! system's available resources in terms of CPU cycles per byte read
//! sequentially from disk (cpdb)."

use rodb_cpu::{CostParams, OpCosts};

use crate::calibrate::{col_bytes, col_scanner_cost, row_scanner_cost, ColumnSpec};
use crate::rates::{speedup, Platform, Workload};

/// One grid cell of the surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    pub tuple_width: f64,
    pub cpdb: f64,
    pub speedup: f64,
}

/// Parameters of the Figure 2 sweep.
#[derive(Debug, Clone)]
pub struct Figure2Config {
    /// Tuple widths on the x-axis (paper: 8–36 bytes).
    pub widths: Vec<f64>,
    /// cpdb values on the y-axis (paper: 9–144).
    pub cpdbs: Vec<f64>,
    /// Fraction of the tuple's attributes the query projects (paper: 0.5).
    pub projection: f64,
    /// Predicate selectivity (paper: 0.1).
    pub selectivity: f64,
    /// Average attribute width used to convert bytes to attribute counts.
    pub attr_width: f64,
}

impl Default for Figure2Config {
    fn default() -> Self {
        Figure2Config {
            widths: (2..=9).map(|w| (w * 4) as f64).collect(), // 8..=36
            cpdbs: vec![9.0, 12.0, 18.0, 36.0, 72.0, 144.0],
            projection: 0.5,
            selectivity: 0.1,
            attr_width: 4.0,
        }
    }
}

/// Evaluate the speedup for one (width, cpdb) point.
pub fn speedup_at(cfg: &Figure2Config, width: f64, cpdb: f64) -> f64 {
    let costs = OpCosts::default();
    let params = CostParams::default();
    let io_unit = 131072.0;
    let sel_bytes = width * cfg.projection;
    let nattrs = (sel_bytes / cfg.attr_width).round().max(1.0) as usize;
    let cols = vec![ColumnSpec::raw(sel_bytes / nattrs as f64); nattrs];
    let w = Workload {
        row_bytes: width,
        col_bytes: col_bytes(&cols),
        row_cost: row_scanner_cost(&costs, &params, 3.0, io_unit, width, cfg.selectivity, &cols),
        col_cost: col_scanner_cost(&costs, &params, 3.0, io_unit, &cols, cfg.selectivity),
        extra_ops: 0.0,
    };
    speedup(&w, &Platform::new(cpdb))
}

/// Generate the whole surface, row-major by cpdb then width.
pub fn surface(cfg: &Figure2Config) -> Vec<Cell> {
    let mut out = Vec::with_capacity(cfg.widths.len() * cfg.cpdbs.len());
    for &cpdb in &cfg.cpdbs {
        for &width in &cfg.widths {
            out.push(Cell {
                tuple_width: width,
                cpdb,
                speedup: speedup_at(cfg, width, cpdb),
            });
        }
    }
    out
}

/// The paper's contour bucket for a speedup value (its legend:
/// 0.4–0.8, 0.8–1.2, 1.2–1.6, 1.6–1.8, ≥1.8).
pub fn bucket(speedup: f64) -> &'static str {
    match speedup {
        s if s < 0.8 => "0.4-0.8",
        s if s < 1.2 => "0.8-1.2",
        s if s < 1.6 => "1.2-1.6",
        s if s < 1.8 => "1.6-1.8",
        _ => "1.8-2.0",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_advantage_only_in_lean_cpu_constrained_corner() {
        // §1.3: "row stores have a potential advantage over column stores
        // only when a relation is lean (less than 20 bytes), and only for
        // CPU-constrained environments (low values of cpdb)."
        let cfg = Figure2Config::default();
        let cells = surface(&cfg);
        for c in &cells {
            if c.speedup < 1.0 {
                assert!(
                    c.tuple_width < 20.0 && c.cpdb <= 18.0,
                    "row won at width {} cpdb {} ({})",
                    c.tuple_width,
                    c.cpdb,
                    c.speedup
                );
            }
        }
        // And the corner itself does favour rows.
        assert!(speedup_at(&cfg, 8.0, 9.0) < 1.0);
    }

    #[test]
    fn wide_tuples_at_high_cpdb_approach_the_byte_ratio() {
        let cfg = Figure2Config::default();
        let s = speedup_at(&cfg, 36.0, 144.0);
        assert!(s > 1.6, "got {s}");
        assert!(s <= 2.0 + 1e-9); // 50% projection caps at 2×
    }

    #[test]
    fn speedup_monotone_in_cpdb() {
        // More cycles per disk byte can only help the (byte-thrifty) column
        // store relative to the row store; width, by contrast, changes the
        // node count discretely and need not be monotone at low cpdb.
        let cfg = Figure2Config::default();
        for &w in &cfg.widths {
            let mut prev = 0.0;
            for &c in &cfg.cpdbs {
                let s = speedup_at(&cfg, w, c);
                assert!(s >= prev - 1e-9, "width {w} cpdb {c}");
                prev = s;
            }
        }
    }

    #[test]
    fn buckets_partition() {
        assert_eq!(bucket(0.5), "0.4-0.8");
        assert_eq!(bucket(1.0), "0.8-1.2");
        assert_eq!(bucket(1.3), "1.2-1.6");
        assert_eq!(bucket(1.7), "1.6-1.8");
        assert_eq!(bucket(1.95), "1.8-2.0");
    }

    #[test]
    fn surface_covers_grid() {
        let cfg = Figure2Config::default();
        let cells = surface(&cfg);
        assert_eq!(cells.len(), cfg.widths.len() * cfg.cpdbs.len());
    }
}
