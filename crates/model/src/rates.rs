//! The Section-5 analytical model, equation by equation.
//!
//! All rates are *normalized by DiskBW* (tuples produced per byte-time the
//! disks could deliver), which is what lets the paper collapse every
//! configuration into the single **cpdb** parameter:
//!
//! * eq (1): `R = MIN(R_DISK, R_CPU)`
//! * eq (3): row disks: `R_DISK = DiskBW · ΣN / SizeFileALL`
//! * eq (4): column disks: `R_DISK = DiskBW · ΣN·f / SizeFileALL`
//! * eq (5)/(6): CPU cascade combines like parallel resistors
//! * eq (7): `Op = clock / I_op`
//! * eq (8): `Scan = clock/I_sys ∥ MIN(clock/I_user, clock·MemBytesCycle/W)`
//! * boxed speedup formula: divide everything by DiskBW and substitute
//!   `cpdb = clock / DiskBW`.

/// Parallel ("resistor") combination of rates — eq (5)/(6).
///
/// `par(&[a, b])` = 1 / (1/a + 1/b). Infinite rates are identities.
///
/// ```
/// // §5's example: a 4 tuples/sec operator feeding a 6 tuples/sec one
/// // produces 2.4 tuples/sec overall.
/// assert!((rodb_model::par(&[4.0, 6.0]) - 2.4).abs() < 1e-12);
/// ```
pub fn par(rates: &[f64]) -> f64 {
    let mut inv = 0.0;
    for &r in rates {
        if r <= 0.0 {
            return 0.0;
        }
        if r.is_finite() {
            inv += 1.0 / r;
        }
    }
    if inv == 0.0 {
        f64::INFINITY
    } else {
        1.0 / inv
    }
}

/// One scanner's CPU-side parameters, in **cycles per tuple** (the paper's
/// `I` counts with the "1 instruction ≈ 1 cycle" approximation baked in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScannerCost {
    /// Kernel (CPU-system) cycles per tuple.
    pub i_sys: f64,
    /// User-mode cycles per tuple.
    pub i_user: f64,
    /// Bytes per tuple that must cross the memory bus into L2.
    pub mem_bytes: f64,
}

/// A single-table scan workload, as seen by both stores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Row-store tuple width in bytes (compressed or not) — what the row
    /// store reads per tuple.
    pub row_bytes: f64,
    /// Bytes per tuple the column store reads (selected columns only).
    pub col_bytes: f64,
    /// Scanner CPU costs.
    pub row_cost: ScannerCost,
    pub col_cost: ScannerCost,
    /// Cycles per tuple of any additional operators in the plan (identical
    /// in both systems — §1.1 fixes the plan above the scanners).
    pub extra_ops: f64,
}

/// Platform knobs of the model (Table 2): cpdb plus the memory bus rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Cycles per disk byte: `clock / DiskBW` (§5).
    pub cpdb: f64,
    /// Bytes the memory bus delivers per cycle.
    pub mem_bytes_cycle: f64,
}

impl Platform {
    pub fn new(cpdb: f64) -> Platform {
        Platform {
            cpdb,
            mem_bytes_cycle: 1.0,
        }
    }

    /// The paper's testbed: 3.2 GHz over 180 MB/s → ~18 cpdb.
    pub fn paper_default() -> Platform {
        Platform::new(3.2e9 / 180.0e6)
    }
}

/// Normalized disk rate (tuples per disk-byte-time): eq (3)/(4) reduce to
/// `1 / bytes_read_per_tuple` for a single-table scan.
pub fn disk_rate(bytes_per_tuple: f64) -> f64 {
    if bytes_per_tuple <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / bytes_per_tuple
    }
}

/// One input file of a multi-file plan, as eq (2)–(4) see it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileSpec {
    /// Relation cardinality `N_i`.
    pub rows: f64,
    /// Row-store tuple width of the file in bytes.
    pub tuple_bytes: f64,
    /// Eq (4)'s `f_i`: how many times smaller the column store's read is
    /// than the full tuple (`tuple_bytes / selected_bytes`); 1.0 for a row
    /// store or a full projection.
    pub f: f64,
}

impl FileSpec {
    pub fn row_store(rows: f64, tuple_bytes: f64) -> FileSpec {
        FileSpec {
            rows,
            tuple_bytes,
            f: 1.0,
        }
    }

    /// Eq (2)/(3)'s per-file size `N_i × TupleWidth_i`.
    pub fn size(&self) -> f64 {
        self.rows * self.tuple_bytes
    }
}

/// Normalized multi-file disk rate — eq (2)–(4) divided by DiskBW:
/// `R_DISK / DiskBW = Σ N_i·f_i / SizeFileALL` tuples per disk byte.
///
/// The paper's eq (2) weights each file's rate by its share of the total
/// bytes ("if File1 is 1 GB and File2 is 10 GB, then the disks process on
/// average one byte from File1 for every ten bytes from File2"); the closed
/// forms (3) and (4) are what this computes.
pub fn disk_rate_files(files: &[FileSpec]) -> f64 {
    let total: f64 = files.iter().map(FileSpec::size).sum();
    if total <= 0.0 {
        return f64::INFINITY;
    }
    files.iter().map(|f| f.rows * f.f).sum::<f64>() / total
}

/// Normalized scanner CPU rate — eq (8) divided by DiskBW.
pub fn scan_rate(cost: &ScannerCost, p: &Platform) -> f64 {
    let sys = p.cpdb / cost.i_sys.max(f64::MIN_POSITIVE);
    let user_compute = p.cpdb / cost.i_user.max(f64::MIN_POSITIVE);
    let user_mem = if cost.mem_bytes > 0.0 {
        p.cpdb * p.mem_bytes_cycle / cost.mem_bytes
    } else {
        f64::INFINITY
    };
    par(&[sys, user_compute.min(user_mem)])
}

/// Normalized whole-plan CPU rate — eq (6)/(7).
pub fn cpu_rate(scanner: f64, extra_ops_cycles: f64, p: &Platform) -> f64 {
    if extra_ops_cycles > 0.0 {
        par(&[scanner, p.cpdb / extra_ops_cycles])
    } else {
        scanner
    }
}

/// Normalized end-to-end rate — eq (1).
pub fn system_rate(disk: f64, cpu: f64) -> f64 {
    disk.min(cpu)
}

/// Full evaluation of one store's rate on a workload.
pub fn store_rate(bytes_per_tuple: f64, cost: &ScannerCost, extra: f64, p: &Platform) -> f64 {
    let disk = disk_rate(bytes_per_tuple);
    let cpu = cpu_rate(scan_rate(cost, p), extra, p);
    system_rate(disk, cpu)
}

/// The boxed speedup formula: columns over rows.
pub fn speedup(w: &Workload, p: &Platform) -> f64 {
    let col = store_rate(w.col_bytes, &w.col_cost, w.extra_ops, p);
    let row = store_rate(w.row_bytes, &w.row_cost, w.extra_ops, p);
    if row == 0.0 {
        f64::INFINITY
    } else {
        col / row
    }
}

/// Is a store I/O-bound on this platform (disk rate below CPU rate)?
pub fn io_bound(bytes_per_tuple: f64, cost: &ScannerCost, extra: f64, p: &Platform) -> bool {
    disk_rate(bytes_per_tuple) <= cpu_rate(scan_rate(cost, p), extra, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cheap_cost() -> ScannerCost {
        ScannerCost {
            i_sys: 10.0,
            i_user: 50.0,
            mem_bytes: 32.0,
        }
    }

    #[test]
    fn par_matches_paper_example() {
        // §5: 4 tuples/sec ∥ 6 tuples/sec = 2.4 tuples/sec.
        assert!((par(&[4.0, 6.0]) - 2.4).abs() < 1e-12);
        assert_eq!(par(&[f64::INFINITY, 8.0]), 8.0);
        assert!(par(&[f64::INFINITY]).is_infinite());
        assert_eq!(par(&[4.0, 0.0]), 0.0);
    }

    #[test]
    fn disk_bound_speedup_equals_byte_ratio() {
        // §5: "In disk-bound systems column stores outperform row stores by
        // the same ratio as the total bytes selected over the total size."
        let w = Workload {
            row_bytes: 32.0,
            col_bytes: 8.0,
            row_cost: cheap_cost(),
            col_cost: cheap_cost(),
            extra_ops: 0.0,
        };
        // Huge cpdb → CPU is never the bottleneck.
        let p = Platform::new(10_000.0);
        assert!((speedup(&w, &p) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_converges_to_one_at_full_projection() {
        let w = Workload {
            row_bytes: 32.0,
            col_bytes: 32.0,
            row_cost: cheap_cost(),
            col_cost: cheap_cost(),
            extra_ops: 0.0,
        };
        let p = Platform::new(10_000.0);
        assert!((speedup(&w, &p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_bound_rows_can_win() {
        // Narrow tuples + expensive column CPU + low cpdb: row store wins
        // (the lower-left corner of Figure 2).
        let w = Workload {
            row_bytes: 8.0,
            col_bytes: 4.0,
            row_cost: ScannerCost {
                i_sys: 12.0,
                i_user: 60.0,
                mem_bytes: 8.0,
            },
            col_cost: ScannerCost {
                i_sys: 8.0,
                i_user: 140.0,
                mem_bytes: 4.0,
            },
            extra_ops: 0.0,
        };
        let p = Platform::new(9.0);
        assert!(speedup(&w, &p) < 1.0);
        // The same workload at high cpdb flips to the byte ratio.
        let p = Platform::new(1_000.0);
        assert!(speedup(&w, &p) > 1.5);
    }

    #[test]
    fn memory_bus_can_cap_user_rate() {
        let cost = ScannerCost {
            i_sys: 1.0,
            i_user: 1.0,
            mem_bytes: 1000.0, // memory-bound
        };
        let p = Platform::new(100.0);
        let r = scan_rate(&cost, &p);
        // user_mem = 100/1000 = 0.1; sys = 100; par ≈ 0.0999.
        assert!((r - par(&[100.0, 0.1])).abs() < 1e-12);
    }

    #[test]
    fn expensive_operator_shrinks_the_difference() {
        // §5: "a high-cost relational operator lowers the CPU rate, and the
        // difference between columns and rows ... becomes less noticeable."
        let w_cheap = Workload {
            row_bytes: 32.0,
            col_bytes: 16.0,
            row_cost: cheap_cost(),
            col_cost: ScannerCost {
                i_user: 150.0,
                ..cheap_cost()
            },
            extra_ops: 0.0,
        };
        let mut w_heavy = w_cheap;
        w_heavy.extra_ops = 5_000.0;
        let p = Platform::new(30.0);
        let s_cheap = speedup(&w_cheap, &p);
        let s_heavy = speedup(&w_heavy, &p);
        assert!((s_heavy - 1.0).abs() < (s_cheap - 1.0).abs());
    }

    #[test]
    fn io_bound_detection_follows_cpdb() {
        let cost = cheap_cost();
        assert!(io_bound(32.0, &cost, 0.0, &Platform::new(1_000.0)));
        assert!(!io_bound(32.0, &cost, 0.0, &Platform::new(1.0)));
    }

    #[test]
    fn multi_file_disk_rate_matches_eq_2_through_4() {
        // Single file degenerates to 1/width (eq 3).
        let one = [FileSpec::row_store(1.0e6, 32.0)];
        assert!((disk_rate_files(&one) - 1.0 / 32.0).abs() < 1e-12);

        // The paper's merge-join example: File1 = 1 GB, File2 = 10 GB →
        // one byte of File1 per ten bytes of File2. With 128 B tuples in
        // both, rates per byte follow the size weighting.
        let f1 = FileSpec::row_store(1.0e9 / 128.0, 128.0);
        let f2 = FileSpec::row_store(10.0e9 / 128.0, 128.0);
        let r = disk_rate_files(&[f1, f2]);
        // Total tuples / total bytes: 11e9/128 tuples over 11e9 bytes.
        assert!((r - 1.0 / 128.0).abs() < 1e-12);
        // And the byte-share claim: File1 contributes 1/11 of the bytes.
        assert!((f1.size() / (f1.size() + f2.size()) - 1.0 / 11.0).abs() < 1e-12);

        // Eq (4): a column store reading 8 of ORDERS' 32 bytes (f = 4)
        // produces tuples 4× faster off the same disks.
        let col = [FileSpec {
            rows: 1.0e6,
            tuple_bytes: 32.0,
            f: 4.0,
        }];
        assert!((disk_rate_files(&col) - 4.0 / 32.0).abs() < 1e-12);

        // Empty/degenerate input.
        assert!(disk_rate_files(&[]).is_infinite());
    }

    #[test]
    fn paper_platform_cpdb() {
        let p = Platform::paper_default();
        assert!((p.cpdb - 17.78).abs() < 0.1);
    }
}
