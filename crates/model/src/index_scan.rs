//! Unclustered-index vs sequential-scan break-even (§2.1.1).
//!
//! "Consider a query that can utilize a secondary, unclustered index.
//! Typically, the query probes the index and constructs a list of record IDs
//! (RIDs) to be retrieved from disk. The list of RIDs is then sorted to
//! minimize disk head movement. If we were to assume a 5 ms seek penalty and
//! 300 MB/sec disk bandwidth, then the query must exhibit less than 0.008%
//! selectivity before it pays off to skip any data and seek directly to the
//! next value (assuming 128-byte tuples and uniform value distribution)."
//!
//! This module reproduces that arithmetic for any configuration, and prices
//! full index-retrieval plans so the break-even can be read off directly.

/// Parameters of the §2.1.1 worked example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexScanConfig {
    /// Seek penalty per skip, seconds (paper example: 5 ms).
    pub seek_s: f64,
    /// Sequential bandwidth, bytes/second (paper example: 300 MB/s).
    pub disk_bw: f64,
    /// Tuple width in bytes (paper example: 128).
    pub tuple_bytes: f64,
}

impl IndexScanConfig {
    /// The paper's §2.1.1 example configuration.
    pub fn paper_example() -> IndexScanConfig {
        IndexScanConfig {
            seek_s: 5.0e-3,
            disk_bw: 300.0e6,
            tuple_bytes: 128.0,
        }
    }

    /// Time to sequentially scan `n` tuples.
    pub fn sequential_time(&self, n: f64) -> f64 {
        n * self.tuple_bytes / self.disk_bw
    }

    /// Time to retrieve `k` uniformly spread matches out of `n` tuples via
    /// sorted-RID fetches: one seek per match plus reading the matched
    /// tuples themselves. (With uniform spread and k ≪ n, skipped gaps are
    /// never free — every match costs a head movement.)
    pub fn index_time(&self, n: f64, selectivity: f64) -> f64 {
        let k = n * selectivity;
        k * self.seek_s + k * self.tuple_bytes / self.disk_bw
    }

    /// Selectivity below which skipping pays off: per skipped *gap* the scan
    /// saves `gap_bytes / bw` but pays one seek, so the break-even gap is
    /// `seek_s × bw` bytes, i.e. selectivity = tuple_bytes / (seek_s × bw).
    pub fn breakeven_selectivity(&self) -> f64 {
        self.tuple_bytes / (self.seek_s * self.disk_bw)
    }

    /// Does the index pay off at this selectivity?
    pub fn index_pays_off(&self, selectivity: f64) -> bool {
        selectivity < self.breakeven_selectivity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_yields_0_008_percent() {
        // 128 / (0.005 × 300e6) = 8.533e-5 ≈ 0.008%.
        let cfg = IndexScanConfig::paper_example();
        let be = cfg.breakeven_selectivity();
        assert!(
            (be * 100.0 - 0.008).abs() < 0.001,
            "break-even {:.5}% (paper: <0.008%)",
            be * 100.0
        );
        assert!(cfg.index_pays_off(0.00005));
        assert!(!cfg.index_pays_off(0.001));
    }

    #[test]
    fn breakeven_matches_plan_cost_crossing() {
        let cfg = IndexScanConfig::paper_example();
        let n = 60.0e6;
        let be = cfg.breakeven_selectivity();
        // Just below break-even the index plan is cheaper; just above, the
        // sequential scan is. (At break-even the seek part alone matches the
        // full scan: reading matched tuples tips the comparison, hence the
        // strict "<" in the paper's wording.)
        let below = 0.5 * be;
        assert!(cfg.index_time(n, below) < cfg.sequential_time(n));
        let above = 1.1 * be;
        assert!(cfg.index_time(n, above) > cfg.sequential_time(n));
    }

    #[test]
    fn wider_tuples_and_slower_seeks_shift_the_breakeven() {
        let base = IndexScanConfig::paper_example();
        // Wider tuples → skipping saves more per gap → higher break-even.
        let wide = IndexScanConfig {
            tuple_bytes: 1024.0,
            ..base
        };
        assert!(wide.breakeven_selectivity() > base.breakeven_selectivity());
        // Slower seeks → skipping costs more → lower break-even.
        let slow = IndexScanConfig {
            seek_s: 10.0e-3,
            ..base
        };
        assert!(slow.breakeven_selectivity() < base.breakeven_selectivity());
    }

    #[test]
    fn costs_scale_linearly_in_n() {
        let cfg = IndexScanConfig::paper_example();
        assert!((cfg.sequential_time(2.0e6) - 2.0 * cfg.sequential_time(1.0e6)).abs() < 1e-12);
        assert!((cfg.index_time(2.0e6, 0.001) - 2.0 * cfg.index_time(1.0e6, 0.001)).abs() < 1e-9);
    }
}
