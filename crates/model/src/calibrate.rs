//! Deriving the model's per-tuple instruction parameters from the engine's
//! cost constants.
//!
//! §5 fills its `I` parameters "from our experimental section"; we do the
//! equivalent programmatically: the same [`OpCosts`]/[`CostParams`] constants
//! that drive the execution-time CPU meter also produce the analytical
//! model's cycles-per-tuple numbers, so model and simulator stay consistent
//! by construction.

use rodb_compress::CodecKind;
use rodb_cpu::{CostParams, OpCosts};

use crate::rates::ScannerCost;

/// One selected column, as the model sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnSpec {
    /// Stored width in bytes (compressed width for -Z tables).
    pub bytes: f64,
    /// Uncompressed width in bytes (what materializing costs).
    pub raw_bytes: f64,
    /// Codec family (decode cost + the FOR-delta decode-everything rule).
    pub codec: CodecKind,
}

impl ColumnSpec {
    pub fn raw(bytes: f64) -> ColumnSpec {
        ColumnSpec {
            bytes,
            raw_bytes: bytes,
            codec: CodecKind::None,
        }
    }
}

/// Convert user uops per tuple into the model's cycles per tuple:
/// uops ÷ 3 per cycle, inflated by the usr-rest factor.
fn uops_to_cycles(uops: f64, params: &CostParams, uops_per_cycle: f64) -> f64 {
    uops / uops_per_cycle * (1.0 + params.rest_frac)
}

/// Kernel cycles per tuple for reading `bytes` per tuple off disk.
fn sys_cycles(bytes: f64, params: &CostParams, io_unit: f64) -> f64 {
    bytes * (params.sys_cycles_per_kib / 1024.0) + bytes / io_unit * params.sys_cycles_per_request
}

/// Row-scanner model parameters for a scan with selectivity `sel` that
/// projects `proj` columns out of a `stored_width`-byte tuple.
pub fn row_scanner_cost(
    costs: &OpCosts,
    params: &CostParams,
    uops_per_cycle: f64,
    io_unit: f64,
    stored_width: f64,
    sel: f64,
    proj: &[ColumnSpec],
) -> ScannerCost {
    let proj_bytes: f64 = proj.iter().map(|c| c.raw_bytes).sum();
    let decode: f64 = proj.iter().map(|c| costs.decode(c.codec)).sum();
    let uops = costs.row_iter
        + costs.predicate
        + sel
            * (proj.len() as f64 * costs.project_attr
                + proj_bytes * costs.copy_byte
                + decode
                + costs.block_call / 100.0);
    ScannerCost {
        i_sys: sys_cycles(stored_width, params, io_unit),
        i_user: uops_to_cycles(uops, params, uops_per_cycle),
        mem_bytes: stored_width,
    }
}

/// Column-scanner model parameters. `cols[0]` is the deepest node (the
/// predicate column); every column in `cols` is read off disk.
pub fn col_scanner_cost(
    costs: &OpCosts,
    params: &CostParams,
    uops_per_cycle: f64,
    io_unit: f64,
    cols: &[ColumnSpec],
    sel: f64,
) -> ScannerCost {
    let mut uops = 0.0;
    let mut disk_bytes = 0.0;
    let mut mem_bytes = 0.0;
    for (i, c) in cols.iter().enumerate() {
        disk_bytes += c.bytes;
        if i == 0 {
            // Node 0 decodes and tests every value, and creates a
            // {position, value} pair per qualifying tuple.
            uops += costs.col_iter
                + costs.predicate
                + costs.decode(c.codec)
                + sel * costs.position_pair;
            mem_bytes += c.bytes;
        } else {
            // Driven nodes handle only qualifying positions — except
            // FOR-delta, which decodes every code on the page (§4.4).
            let decode_frac = if c.codec == CodecKind::ForDelta {
                1.0
            } else {
                sel
            };
            uops += decode_frac * costs.decode(c.codec)
                + sel
                    * (costs.col_iter
                        + costs.position_pair
                        + costs.project_attr
                        + c.raw_bytes * costs.copy_byte);
            // Memory traffic: dense enough access streams the column
            // (the engine's prefetcher rule); sparse access is charged as
            // part of user cycles by the measured engine, so the model keeps
            // the optimistic streaming term weighted by touch density.
            mem_bytes += c.bytes * (8.0 * sel).min(1.0);
        }
    }
    uops += sel * costs.block_call * (cols.len() as f64) / 100.0;
    ScannerCost {
        i_sys: sys_cycles(disk_bytes, params, io_unit),
        i_user: uops_to_cycles(uops, params, uops_per_cycle),
        mem_bytes,
    }
}

/// Disk bytes per tuple for a column scan (what eq (4)'s `f` divides).
pub fn col_bytes(cols: &[ColumnSpec]) -> f64 {
    cols.iter().map(|c| c.bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> (OpCosts, CostParams) {
        (OpCosts::default(), CostParams::default())
    }

    fn int_cols(n: usize) -> Vec<ColumnSpec> {
        vec![ColumnSpec::raw(4.0); n]
    }

    #[test]
    fn row_cost_insensitive_to_projection_bytes_on_disk() {
        let (c, p) = defaults();
        let a = row_scanner_cost(&c, &p, 3.0, 131072.0, 152.0, 0.1, &int_cols(1));
        let b = row_scanner_cost(&c, &p, 3.0, 131072.0, 152.0, 0.1, &int_cols(16));
        // Disk/mem identical; only user CPU grows with the projection.
        assert_eq!(a.i_sys, b.i_sys);
        assert_eq!(a.mem_bytes, b.mem_bytes);
        assert!(b.i_user > a.i_user);
    }

    #[test]
    fn col_cost_grows_with_columns_everywhere() {
        let (c, p) = defaults();
        let a = col_scanner_cost(&c, &p, 3.0, 131072.0, &int_cols(1), 0.1);
        let b = col_scanner_cost(&c, &p, 3.0, 131072.0, &int_cols(8), 0.1);
        assert!(b.i_sys > a.i_sys);
        assert!(b.i_user > a.i_user);
        assert!(b.mem_bytes > a.mem_bytes);
    }

    #[test]
    fn low_selectivity_makes_extra_columns_cheap() {
        // §4.2: at 0.1% the column store's extra columns add negligible CPU.
        let (c, p) = defaults();
        let one = col_scanner_cost(&c, &p, 3.0, 131072.0, &int_cols(1), 0.001);
        let many = col_scanner_cost(&c, &p, 3.0, 131072.0, &int_cols(16), 0.001);
        assert!((many.i_user - one.i_user) / one.i_user < 0.5);
        // ...but at 100% they are expensive.
        let one_hi = col_scanner_cost(&c, &p, 3.0, 131072.0, &int_cols(1), 1.0);
        let many_hi = col_scanner_cost(&c, &p, 3.0, 131072.0, &int_cols(16), 1.0);
        assert!(many_hi.i_user > 3.0 * one_hi.i_user);
    }

    #[test]
    fn fordelta_driven_column_decodes_everything() {
        let (c, p) = defaults();
        let delta = ColumnSpec {
            bytes: 1.0,
            raw_bytes: 4.0,
            codec: CodecKind::ForDelta,
        };
        let packed = ColumnSpec {
            bytes: 1.0,
            raw_bytes: 4.0,
            codec: CodecKind::BitPack,
        };
        let with_delta =
            col_scanner_cost(&c, &p, 3.0, 131072.0, &[ColumnSpec::raw(4.0), delta], 0.01);
        let with_pack =
            col_scanner_cost(&c, &p, 3.0, 131072.0, &[ColumnSpec::raw(4.0), packed], 0.01);
        assert!(with_delta.i_user > with_pack.i_user);
    }

    #[test]
    fn compression_trades_bytes_for_cycles() {
        let (c, p) = defaults();
        let raw = vec![ColumnSpec::raw(4.0); 4];
        let packed = vec![
            ColumnSpec {
                bytes: 1.0,
                raw_bytes: 4.0,
                codec: CodecKind::BitPack,
            };
            4
        ];
        let r = col_scanner_cost(&c, &p, 3.0, 131072.0, &raw, 1.0);
        let z = col_scanner_cost(&c, &p, 3.0, 131072.0, &packed, 1.0);
        assert!(col_bytes(&packed) < col_bytes(&raw));
        assert!(z.i_sys < r.i_sys); // fewer kernel bytes
        assert!(z.i_user > r.i_user); // extra decompression
    }
}
