//! Table 1: expected performance trends per workload/system parameter.
//!
//! The paper's Table 1 lists, for seven parameters, whether elapsed disk
//! time, memory-transfer time, and CPU time go up or down, with the section
//! that demonstrates each. The arrows below are reconstructed from the
//! paper's §4 prose (each is quoted in the `why` field); the `table1`
//! harness additionally *measures* each trend with the engine and checks the
//! directions agree.

/// Direction of a time component when the parameter grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trend {
    Up,
    Down,
    Flat,
}

impl Trend {
    pub fn arrow(self) -> &'static str {
        match self {
            Trend::Up => "↑",
            Trend::Down => "↓",
            Trend::Flat => "–",
        }
    }

    /// Classify a measured before→after change with a tolerance band.
    pub fn of(before: f64, after: f64, tolerance: f64) -> Trend {
        if before <= 0.0 && after <= 0.0 {
            return Trend::Flat;
        }
        let rel = (after - before) / before.abs().max(1e-12);
        if rel > tolerance {
            Trend::Up
        } else if rel < -tolerance {
            Trend::Down
        } else {
            Trend::Flat
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct TrendRow {
    pub parameter: &'static str,
    pub disk: Trend,
    pub mem: Trend,
    pub cpu: Trend,
    pub section: &'static str,
    pub why: &'static str,
}

/// The paper's Table 1, reconstructed from §4's prose.
pub fn paper_table1() -> Vec<TrendRow> {
    use Trend::*;
    vec![
        TrendRow {
            parameter: "selecting more attributes (column store only)",
            disk: Up,
            mem: Up,
            cpu: Up,
            section: "4.1",
            why: "column stores read, transfer and process one more file per \
                  selected attribute; rows are insensitive",
        },
        TrendRow {
            parameter: "decreased selectivity",
            disk: Flat,
            mem: Down,
            cpu: Down,
            section: "4.2",
            why: "\"selecting fewer tuples ... has no effect on I/O\"; driven \
                  scan nodes process ~no values, string transfer cost vanishes",
        },
        TrendRow {
            parameter: "narrower tuples",
            disk: Down,
            mem: Down,
            cpu: Down,
            section: "4.3",
            why: "fewer bytes per tuple everywhere; \"less I/O per tuple\", \
                  memory delays no longer visible",
        },
        TrendRow {
            parameter: "compression",
            disk: Down,
            mem: Down,
            cpu: Up,
            section: "4.4",
            why: "\"compressed tuples remove pressure from disk and main \
                  memory\"; \"CPU user time to slightly increase due to extra \
                  instructions required by decompression\"",
        },
        TrendRow {
            parameter: "larger prefetch",
            disk: Down,
            mem: Flat,
            cpu: Flat,
            section: "4.5",
            why: "amortizes seeks between column files (and between competing \
                  scans); pure disk-geometry effect",
        },
        TrendRow {
            parameter: "more disk traffic",
            disk: Up,
            mem: Flat,
            cpu: Flat,
            section: "4.5",
            why: "competing scans steal bandwidth and force extra seeks",
        },
        TrendRow {
            parameter: "more CPUs / more disks",
            disk: Down,
            mem: Down,
            cpu: Down,
            section: "5",
            why: "modelled through the cpdb rating: more disks lower disk \
                  time, more CPUs lower CPU time; bus *bandwidth* is fixed \
                  but the latency-bound share of memory stalls (cycles) \
                  drains faster at higher aggregate clock",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_with_tolerance() {
        assert_eq!(Trend::of(10.0, 12.0, 0.05), Trend::Up);
        assert_eq!(Trend::of(10.0, 8.0, 0.05), Trend::Down);
        assert_eq!(Trend::of(10.0, 10.2, 0.05), Trend::Flat);
        assert_eq!(Trend::of(0.0, 0.0, 0.05), Trend::Flat);
    }

    #[test]
    fn table_has_seven_rows_like_the_paper() {
        let t = paper_table1();
        assert_eq!(t.len(), 7);
        assert!(t.iter().all(|r| !r.why.is_empty()));
    }

    #[test]
    fn arrows_render() {
        assert_eq!(Trend::Up.arrow(), "↑");
        assert_eq!(Trend::Down.arrow(), "↓");
        assert_eq!(Trend::Flat.arrow(), "–");
    }
}
