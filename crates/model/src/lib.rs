//! The analytical model of Section 5: predicts relative row/column
//! performance for any configuration from a handful of parameters, collapsed
//! into the **cpdb** (cycles per disk byte) rating.
//!
//! [`rates`] implements equations (1)–(8) and the boxed speedup formula;
//! [`calibrate`] derives the per-tuple instruction parameters from the same
//! cost constants the execution simulator uses; [`figure2`] regenerates the
//! paper's speedup contour; [`trends`] encodes Table 1.

pub mod calibrate;
pub mod figure2;
pub mod index_scan;
pub mod rates;
pub mod trends;

pub use calibrate::{col_bytes, col_scanner_cost, row_scanner_cost, ColumnSpec};
pub use figure2::{bucket, speedup_at, surface, Cell, Figure2Config};
pub use index_scan::IndexScanConfig;
pub use rates::{
    cpu_rate, disk_rate, disk_rate_files, io_bound, par, scan_rate, speedup, store_rate,
    system_rate, FileSpec, Platform, ScannerCost, Workload,
};
pub use trends::{paper_table1, Trend, TrendRow};
