//! Fuzzer CLI.
//!
//! ```text
//! cargo run -p rodb-fuzz --release -- --iters 10000             # oracle diff
//! cargo run -p rodb-fuzz --release -- --iters 10000 --faults    # fault mode
//! cargo run -p rodb-fuzz --release -- --iters 10000 --recovery  # recovery mode
//! cargo run -p rodb-fuzz --release -- --iters 10000 --cache     # cache mode
//! cargo run -p rodb-fuzz --release -- --iters 10000 --concurrent # scheduler
//! cargo run -p rodb-fuzz --release -- --iters 10000 --ingest     # durable ingest
//! cargo run -p rodb-fuzz --release -- --iters 10000 --observe    # observability
//! cargo run -p rodb-fuzz -- --seed 1234                         # replay one
//! ```
//!
//! Every failure prints the reproducing seed; the exit code is non-zero if
//! any seed failed. `--json PATH` additionally writes a one-object summary
//! (mode, seed window, failing seeds, drained metrics registry) for CI
//! artifacts; `--trace-dir DIR` re-runs the sweep's first seed with span
//! tracing and saves both trace formats there.

use std::process::ExitCode;

use rodb_trace::{Json, MetricsRegistry};

fn usage() -> ! {
    eprintln!(
        "usage: rodb-fuzz [--seed N | --start-seed N --iters N] [--faults | --recovery | \
         --cache | --concurrent | --ingest] [--json PATH]\n\
         \n\
         --seed N        run exactly one seed (replay a failure)\n\
         --start-seed N  first seed of a sweep (default 0)\n\
         --iters N       number of seeds to sweep (default 200)\n\
         --faults        fault-injection mode: every page read is corrupted\n\
                         and the engine must return Err(Corrupt)\n\
         --recovery      recovery mode: mirrored reads must repair to\n\
                         oracle-identical rows; mirror=1 Skip scans must\n\
                         return the oracle over exactly the surviving rows\n\
         --cache         cache mode: the drawn page-cache geometry across\n\
                         {{serial,parallel}}x{{scalar,fast}}x{{on,off}} must\n\
                         stay bit-identical; repaired pages re-read, never\n\
                         served stale\n\
         --concurrent    concurrent mode: the seed's plan plus drawn riders\n\
                         run through the query service (mixed arrivals,\n\
                         admission, cache on/off) and every query's rows\n\
                         must match its solo run\n\
         --ingest        ingest mode: a drawn insert/merge/crash schedule\n\
                         against the WAL-backed store; recovery at sampled\n\
                         crash points and snapshot reads must match a\n\
                         Vec-of-tuples model exactly\n\
         --observe       observe mode: the concurrent-style service runs\n\
                         with the observability plane off vs fully on;\n\
                         rows, clocks and report aggregates must be\n\
                         bit-identical, and the plane must reconcile with\n\
                         the report\n\
         --json PATH     write a JSON summary of the sweep to PATH\n\
         --trace-dir DIR re-run the first seed traced; save span + Chrome\n\
                         trace JSON under DIR"
    );
    std::process::exit(2);
}

fn parse_u64(v: Option<String>) -> u64 {
    match v.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => usage(),
    }
}

fn write_json(
    path: &str,
    mode: &str,
    first: u64,
    count: u64,
    failed: &[u64],
) -> std::io::Result<()> {
    let doc = Json::obj()
        .set("mode", mode)
        .set("start_seed", first)
        .set("iters", count)
        .set("failures", failed.len() as u64)
        .set(
            "failed_seeds",
            failed.iter().map(|&s| Json::from(s)).collect::<Vec<_>>(),
        )
        .set("metrics", MetricsRegistry::drain());
    std::fs::write(path, doc.pretty())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut seed: Option<u64> = None;
    let mut start: u64 = 0;
    let mut iters: u64 = 200;
    let mut faults = false;
    let mut recovery = false;
    let mut cache = false;
    let mut concurrent = false;
    let mut ingest = false;
    let mut observe = false;
    let mut json: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = Some(parse_u64(args.next())),
            "--start-seed" => start = parse_u64(args.next()),
            "--iters" => iters = parse_u64(args.next()),
            "--faults" => faults = true,
            "--recovery" => recovery = true,
            "--cache" => cache = true,
            "--concurrent" => concurrent = true,
            "--ingest" => ingest = true,
            "--observe" => observe = true,
            "--json" => json = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-dir" => trace_dir = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if (faults as u8)
        + (recovery as u8)
        + (cache as u8)
        + (concurrent as u8)
        + (ingest as u8)
        + (observe as u8)
        > 1
    {
        usage();
    }
    let (first, count) = match seed {
        Some(s) => (s, 1),
        None => (start, iters),
    };
    type CaseFn = fn(u64) -> Result<(), String>;
    let (mode, run): (&str, CaseFn) = if faults {
        ("faults", rodb_fuzz::run_fault_case)
    } else if recovery {
        ("recovery", rodb_fuzz::run_recovery_case)
    } else if cache {
        ("cache", rodb_fuzz::run_cache_case)
    } else if concurrent {
        ("concurrent", rodb_fuzz::run_concurrent_case)
    } else if ingest {
        ("ingest", rodb_fuzz::run_ingest_case)
    } else if observe {
        ("observe", rodb_fuzz::run_observe_case)
    } else {
        ("healthy", rodb_fuzz::run_case)
    };

    let mut failed: Vec<u64> = Vec::new();
    for s in first..first.saturating_add(count) {
        if let Err(msg) = run(s) {
            failed.push(s);
            eprintln!("FAIL {msg}");
            let flag = match mode {
                "faults" => " --faults",
                "recovery" => " --recovery",
                "cache" => " --cache",
                "concurrent" => " --concurrent",
                "ingest" => " --ingest",
                "observe" => " --observe",
                _ => "",
            };
            eprintln!("  reproduce: cargo run -p rodb-fuzz -- --seed {s}{flag}");
        }
    }
    if let Some(dir) = &trace_dir {
        match rodb_fuzz::save_case_trace(first, mode, dir) {
            Ok(path) => println!("trace: {}", path.display()),
            Err(e) => eprintln!("warning: could not save trace: {e}"),
        }
    }
    if let Some(path) = &json {
        if let Err(e) = write_json(path, mode, first, count, &failed) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
    if failed.is_empty() {
        println!("ok: {count} seed(s) from {first} clean ({mode} mode)");
        ExitCode::SUCCESS
    } else {
        eprintln!("{}/{count} seed(s) failed ({mode} mode)", failed.len());
        ExitCode::FAILURE
    }
}
