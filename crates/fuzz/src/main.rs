//! Fuzzer CLI.
//!
//! ```text
//! cargo run -p rodb-fuzz --release -- --iters 10000            # oracle diff
//! cargo run -p rodb-fuzz --release -- --iters 10000 --faults   # fault mode
//! cargo run -p rodb-fuzz -- --seed 1234                        # replay one
//! ```
//!
//! Every failure prints the reproducing seed; the exit code is non-zero if
//! any seed failed.

use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: rodb-fuzz [--seed N | --start-seed N --iters N] [--faults]\n\
         \n\
         --seed N        run exactly one seed (replay a failure)\n\
         --start-seed N  first seed of a sweep (default 0)\n\
         --iters N       number of seeds to sweep (default 200)\n\
         --faults        fault-injection mode: every page read is corrupted\n\
                         and the engine must return Err(Corrupt)"
    );
    std::process::exit(2);
}

fn parse_u64(v: Option<String>) -> u64 {
    match v.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut seed: Option<u64> = None;
    let mut start: u64 = 0;
    let mut iters: u64 = 200;
    let mut faults = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = Some(parse_u64(args.next())),
            "--start-seed" => start = parse_u64(args.next()),
            "--iters" => iters = parse_u64(args.next()),
            "--faults" => faults = true,
            _ => usage(),
        }
    }
    let (first, count) = match seed {
        Some(s) => (s, 1),
        None => (start, iters),
    };

    let mut failures = 0u64;
    for s in first..first.saturating_add(count) {
        let result = if faults {
            rodb_fuzz::run_fault_case(s)
        } else {
            rodb_fuzz::run_case(s)
        };
        if let Err(msg) = result {
            failures += 1;
            eprintln!("FAIL {msg}");
            eprintln!(
                "  reproduce: cargo run -p rodb-fuzz -- --seed {s}{}",
                if faults { " --faults" } else { "" }
            );
        }
    }
    if failures == 0 {
        println!(
            "ok: {count} seed(s) from {first} clean{}",
            if faults { " (fault injection)" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures}/{count} seed(s) failed");
        ExitCode::FAILURE
    }
}
