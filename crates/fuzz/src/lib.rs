//! Deterministic query fuzzer with a model oracle.
//!
//! Each seed expands (via [`gen::generate`]) into a random schema, data set,
//! physical design, and query plan. The plan is executed through the real
//! engine — serially and with the case's thread count — and the result rows
//! are diffed against [`oracle::expected`], a naive `Vec`-of-tuples
//! evaluator that shares no scan/page/codec code with the engine.
//!
//! [`run_fault_case`] runs the same plan with 100 % fault injection
//! ([`rodb_types::FaultSpec::always`]): every page read comes back damaged
//! (bit flips, truncations, short reads), and the only acceptable outcome
//! is `Err(Error::Corrupt)` — never a panic, never silently wrong rows.
//!
//! Failures are reproducible from the seed alone:
//! `cargo run -p rodb-fuzz -- --seed <n> [--faults]`.

pub mod gen;
pub mod oracle;

use std::sync::Arc;

use rodb_compress::{Codec, ColumnCompression};
use rodb_core::{
    Database, IngestStore, QueryBuilder, QueryResult, QueryService, ServiceReport, ServiceRequest,
};
use rodb_engine::{AggSpec, CmpOp, Predicate, ScanLayout};
use rodb_storage::{BuildLayouts, Layout, QuarantinedPage, Table, TableBuilder};
use rodb_trace::Registry;
use rodb_types::{
    Admission, CacheSpec, DataType, Error, FaultSpec, HardwareConfig, IngestSpec, ObserveSpec,
    OnCorrupt, ServiceSpec, SplitMix64, SystemConfig, Value,
};

use gen::{CasePlan, StorageKind};

/// Build the case's table through the real loader.
fn build_table(plan: &CasePlan) -> rodb_types::Result<Table> {
    let mut b = match plan.storage {
        StorageKind::Plain => TableBuilder::new(
            "t",
            plan.schema.clone(),
            plan.page_size,
            BuildLayouts::both(),
        )?,
        StorageKind::Pax => TableBuilder::new_pax(
            "t",
            plan.schema.clone(),
            plan.page_size,
            BuildLayouts::both(),
        )?,
        StorageKind::Compressed => TableBuilder::with_compression(
            "t",
            plan.schema.clone(),
            plan.page_size,
            BuildLayouts::both(),
            plan.comps.clone(),
        )?,
    };
    for r in &plan.rows {
        b.push_row(r)?;
    }
    b.finish()
}

/// Execute the plan through the engine with `threads` workers and the given
/// fast-path setting, optionally under fault injection with a recovery
/// configuration (mirror count + corruption policy).
#[allow(clippy::too_many_arguments)]
fn execute_traced(
    plan: &CasePlan,
    table: Table,
    threads: usize,
    fast: bool,
    faults: Option<FaultSpec>,
    mirror: usize,
    on_corrupt: OnCorrupt,
    cache: Option<CacheSpec>,
    trace: bool,
) -> rodb_types::Result<QueryResult> {
    let sys = SystemConfig {
        page_size: plan.page_size,
        threads,
        scan_fast_path: fast,
        faults,
        mirror,
        on_corrupt,
        cache,
        ..SystemConfig::default()
    };
    let mut db = Database::with_config(HardwareConfig::default(), sys)?;
    db.register(table);
    let mut q = db
        .query("t")?
        .layout(plan.layout)
        .select_indices(&plan.projection)
        .trace(trace);
    for p in &plan.predicates {
        q = q.filter_pred(p.clone())?;
    }
    if let Some(g) = plan.group_by {
        q = q.group_by(&format!("c{g}"))?;
    }
    for a in &plan.aggs {
        q = q.aggregate(*a);
    }
    if plan.sorted_agg {
        q = q.sorted_aggregation();
    }
    q.run_collect()
}

/// [`execute_traced`] without tracing or caching — what the healthy,
/// fault, and recovery sweeps run.
fn execute(
    plan: &CasePlan,
    table: Table,
    threads: usize,
    fast: bool,
    faults: Option<FaultSpec>,
    mirror: usize,
    on_corrupt: OnCorrupt,
) -> rodb_types::Result<QueryResult> {
    execute_traced(
        plan, table, threads, fast, faults, mirror, on_corrupt, None, false,
    )
}

/// Re-run one seed with span tracing on and save both trace formats
/// (`<dir>/fuzz_<mode>_seed_<n>.{trace,chrome}.json`) — the CI artifact
/// path. `"recovery"` runs the mirrored-repair configuration (every primary
/// read damaged, clean second replica) so the trace carries retry/repair
/// events; any other mode runs the plan healthy.
pub fn save_case_trace(seed: u64, mode: &str, dir: &str) -> Result<std::path::PathBuf, String> {
    let plan = gen::generate(seed);
    let table = catching(|| build_table(&plan))
        .map_err(|p| format!("seed {seed}: build panicked: {p}"))?
        .map_err(|e| format!("seed {seed}: build failed: {e:?}"))?;
    let (faults, mirror, policy) = if mode == "recovery" {
        (Some(FaultSpec::always(seed)), 2, OnCorrupt::Retry)
    } else {
        (None, 1, OnCorrupt::Fail)
    };
    let res = execute_traced(
        &plan,
        table,
        plan.threads,
        plan.scan_fast_path,
        faults,
        mirror,
        policy,
        if mode == "cache" {
            Some(plan.cache)
        } else {
            None
        },
        true,
    )
    .map_err(|e| format!("seed {seed}: traced run failed: {e:?}"))?;
    let trace = res
        .trace
        .ok_or_else(|| format!("seed {seed}: traced run produced no trace"))?;
    trace
        .save(dir, &format!("fuzz_{mode}_seed_{seed}"))
        .map_err(|e| format!("seed {seed}: could not save trace: {e}"))
}

/// Run `f`, converting a panic into `Err(message)`. A panic anywhere in the
/// engine is a fuzzer failure in both modes.
fn catching<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|e| {
        if let Some(s) = e.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// The thread counts to exercise: serial always, plus the case's own count
/// when it differs.
fn thread_counts(plan: &CasePlan) -> Vec<usize> {
    if plan.threads == 1 {
        vec![1]
    } else {
        vec![1, plan.threads]
    }
}

/// Healthy-mode case: engine (serial and parallel) must match the oracle.
pub fn run_case(seed: u64) -> Result<(), String> {
    let plan = gen::generate(seed);
    let want = oracle::expected(&plan);
    let table = catching(|| build_table(&plan))
        .map_err(|p| {
            format!(
                "seed {seed}: build panicked: {p}\n  case: {}",
                plan.describe()
            )
        })?
        .map_err(|e| {
            format!(
                "seed {seed}: build failed: {e:?}\n  case: {}",
                plan.describe()
            )
        })?;
    // Four-mode sweep: {serial, parallel} × {scalar, fast path}. Every mode
    // must produce bit-identical rows — the fast path is an execution
    // strategy, never an answer change.
    for threads in thread_counts(&plan) {
        for fast in [false, true] {
            let got = catching(|| {
                execute(
                    &plan,
                    table.clone(),
                    threads,
                    fast,
                    None,
                    1,
                    OnCorrupt::Fail,
                )
            })
            .map_err(|p| {
                format!(
                    "seed {seed}: engine panicked ({threads} threads, fast={fast}): {p}\n  \
                         case: {}",
                    plan.describe()
                )
            })?
            .map_err(|e| {
                format!(
                    "seed {seed}: engine error ({threads} threads, fast={fast}): {e:?}\n  \
                         case: {}",
                    plan.describe()
                )
            })?;
            if got.rows != want {
                return Err(format!(
                    "seed {seed}: MISMATCH ({threads} threads, fast={fast}): engine {} rows, \
                     oracle {} rows\n  case: {}\n  engine: {:?}\n  oracle: {:?}",
                    got.rows.len(),
                    want.len(),
                    plan.describe(),
                    got.rows,
                    want,
                ));
            }
        }
    }
    Ok(())
}

/// Fault-mode case: with every page read corrupted, the engine must return
/// `Err(Corrupt)` — no panic, no other error kind, no successful result.
///
/// One exception: the fast path's zone maps live in clean in-memory table
/// metadata and can prove every driver page irrelevant, so no page is ever
/// *parsed* — remaining bytes are only drained for I/O accounting, never
/// decoded. That `Ok` is accepted only when the I/O stats confirm pages were
/// zone-skipped and the rows still match the oracle (corrupt data that is
/// actually decoded always fails its checksum).
pub fn run_fault_case(seed: u64) -> Result<(), String> {
    let plan = gen::generate(seed);
    if plan.rows.is_empty() {
        // No pages, nothing to corrupt.
        return Ok(());
    }
    let want = oracle::expected(&plan);
    let table = catching(|| build_table(&plan))
        .map_err(|p| format!("seed {seed}: build panicked: {p}"))?
        .map_err(|e| format!("seed {seed}: build failed: {e:?}"))?;
    for threads in thread_counts(&plan) {
        // Fault mode honours the plan's drawn fast-path setting, so over the
        // seed space both paths face corrupted pages.
        let outcome = catching(|| {
            execute(
                &plan,
                table.clone(),
                threads,
                plan.scan_fast_path,
                Some(FaultSpec::always(plan.seed)),
                1,
                OnCorrupt::Fail,
            )
        })
        .map_err(|p| {
            format!(
                "seed {seed}: PANIC under faults ({threads} threads): {p}\n  case: {}",
                plan.describe()
            )
        })?;
        match outcome {
            Err(Error::Corrupt(_)) => {}
            Err(other) => {
                return Err(format!(
                    "seed {seed}: expected Corrupt under faults ({threads} threads), got \
                     {other:?}\n  case: {}",
                    plan.describe()
                ));
            }
            Ok(res) => {
                let zone_skipped = res.report.io.pages_skipped > 0;
                if !(zone_skipped && res.rows == want) {
                    return Err(format!(
                        "seed {seed}: fault-injected run returned {} rows without error \
                         ({threads} threads, skipped {} pages)\n  case: {}",
                        res.rows.len(),
                        res.report.io.pages_skipped,
                        plan.describe()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Cache-mode case: the page-cache tier is an I/O accounting layer, never
/// an answer change. The drawn cache geometry (including 0-frame,
/// single-frame and larger-than-table sizes) runs across
/// {serial, parallel} × {scalar, fast path} × {cache on, cache off} and
/// every mode must produce bit-identical rows. With caching on, the
/// accounting must reconcile: each enabled run classifies every page read
/// as exactly one hit or one miss, and the cache-off runs report zero
/// cache activity.
///
/// The recovery sweep then re-runs the plan under 100 % primary-read
/// damage with a clean mirror and caching on: repaired pages must be
/// re-read from disk, never served stale — every retry is a repair, a
/// repaired read is always accounted a miss (hits never roll faults, so
/// `repairs <= misses`), and the rows still match the oracle exactly.
pub fn run_cache_case(seed: u64) -> Result<(), String> {
    let plan = gen::generate(seed);
    let want = oracle::expected(&plan);
    let table = catching(|| build_table(&plan))
        .map_err(|p| {
            format!(
                "seed {seed}: build panicked: {p}\n  case: {}",
                plan.describe()
            )
        })?
        .map_err(|e| {
            format!(
                "seed {seed}: build failed: {e:?}\n  case: {}",
                plan.describe()
            )
        })?;
    for threads in thread_counts(&plan) {
        for fast in [false, true] {
            for cache in [None, Some(plan.cache)] {
                let what = format!("{threads} threads, fast={fast}, cache={cache:?}");
                let got = catching(|| {
                    execute_traced(
                        &plan,
                        table.clone(),
                        threads,
                        fast,
                        None,
                        1,
                        OnCorrupt::Fail,
                        cache,
                        false,
                    )
                })
                .map_err(|p| {
                    format!(
                        "seed {seed}: engine panicked ({what}): {p}\n  case: {}",
                        plan.describe()
                    )
                })?
                .map_err(|e| {
                    format!(
                        "seed {seed}: engine error ({what}): {e:?}\n  case: {}",
                        plan.describe()
                    )
                })?;
                if got.rows != want {
                    return Err(format!(
                        "seed {seed}: MISMATCH ({what}): engine {} rows, oracle {} rows\n  \
                         case: {}\n  engine: {:?}\n  oracle: {:?}",
                        got.rows.len(),
                        want.len(),
                        plan.describe(),
                        got.rows,
                        want,
                    ));
                }
                let c = got.report.io.cache;
                if cache.is_none() && c != rodb_io::CacheStats::default() {
                    return Err(format!(
                        "seed {seed}: cache-off run reported cache activity {c:?} ({what})\n  \
                         case: {}",
                        plan.describe()
                    ));
                }
                if let Some(spec) = cache {
                    if spec.frames == 0 && c.hits + c.evictions > 0 {
                        return Err(format!(
                            "seed {seed}: zero-frame cache hit or evicted ({c:?}, {what})\n  \
                             case: {}",
                            plan.describe()
                        ));
                    }
                    // Zone-rejected pages bypass the cache entirely (neither
                    // fetched nor cached), so a fully skipped scan legally
                    // requests no pages — but then the skip counter must say
                    // so.
                    let skipped = got.report.io.pages_skipped;
                    if !plan.rows.is_empty()
                        && threads == 1
                        && c.hits + c.misses == 0
                        && skipped == 0
                    {
                        return Err(format!(
                            "seed {seed}: cache-on scan of a non-empty table neither \
                             requested nor skipped any page ({what})\n  case: {}",
                            plan.describe()
                        ));
                    }
                }
            }
        }
    }

    // Recovery sweep: repaired pages are re-read from disk, never stale.
    for threads in thread_counts(&plan) {
        let what = format!("mirrored faults, cache on, {threads} threads");
        let res = catching(|| {
            execute_traced(
                &plan,
                table.clone(),
                threads,
                plan.scan_fast_path,
                Some(FaultSpec::always(seed)),
                2,
                OnCorrupt::Retry,
                Some(plan.cache),
                false,
            )
        })
        .map_err(|p| {
            format!(
                "seed {seed}: PANIC ({what}): {p}\n  case: {}",
                plan.describe()
            )
        })?
        .map_err(|e| {
            format!(
                "seed {seed}: run failed ({what}): {e:?}\n  case: {}",
                plan.describe()
            )
        })?;
        if res.rows != want {
            return Err(format!(
                "seed {seed}: stale or wrong rows ({what}): engine {} rows, oracle {} rows\n  \
                 case: {}",
                res.rows.len(),
                want.len(),
                plan.describe()
            ));
        }
        let rec = res.report.io.recovery;
        let c = res.report.io.cache;
        if rec.repairs != rec.retries {
            return Err(format!(
                "seed {seed}: {} retries but {} repairs ({what})\n  case: {}",
                rec.retries,
                rec.repairs,
                plan.describe()
            ));
        }
        if rec.repairs > c.misses {
            return Err(format!(
                "seed {seed}: {} repairs but only {} cache misses — a repaired page was \
                 served from the cache instead of disk ({what})\n  case: {}",
                rec.repairs,
                c.misses,
                plan.describe()
            ));
        }
    }
    Ok(())
}

/// One rider query for concurrent mode: query 0 is the seed's own plan,
/// the rest are drawn from a *separate* SplitMix64 stream so existing
/// seeds keep their exact plans in every other mode.
struct RiderQuery {
    projection: Vec<usize>,
    predicates: Vec<Predicate>,
    group_by: Option<usize>,
    aggs: Vec<AggSpec>,
    sorted_agg: bool,
}

/// Draw one extra rider within the same validity envelope as
/// [`gen::generate`]: shuffled-prefix projection, mostly sampled-literal
/// predicates, optional (grouped) aggregation over projected int positions.
fn draw_rider(rng: &mut SplitMix64, plan: &CasePlan) -> RiderQuery {
    let ncols = plan.schema.len();
    let mut idx: Vec<usize> = (0..ncols).collect();
    for i in (1..ncols).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        idx.swap(i, j);
    }
    let nproj = 1 + rng.below(ncols as u64) as usize;
    let projection = idx[..nproj].to_vec();

    const OPS: [CmpOp; 6] = [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Ge,
        CmpOp::Gt,
    ];
    let npred = rng.below(3) as usize;
    let mut predicates = Vec::with_capacity(npred);
    for _ in 0..npred {
        let c = rng.below(ncols as u64) as usize;
        let op = OPS[rng.below(6) as usize];
        let sample = !plan.rows.is_empty() && rng.below(10) < 7;
        let lit = if sample {
            plan.rows[rng.below(plan.rows.len() as u64) as usize][c].clone()
        } else {
            match plan.schema.dtype(c) {
                DataType::Int => Value::Int(rng.range_i32(-1100, 1100)),
                DataType::Text(w) => {
                    let len = rng.below(w as u64 + 1) as usize;
                    let bytes: Vec<u8> = (0..len).map(|_| b'a' + rng.below(26) as u8).collect();
                    Value::Text(bytes.into_boxed_slice())
                }
                DataType::Long => unreachable!("generator never emits Long columns"),
            }
        };
        predicates.push(Predicate::new(c, op, lit));
    }

    let mut group_by = None;
    let mut aggs: Vec<AggSpec> = Vec::new();
    if rng.below(100) < 35 {
        if rng.below(10) < 6 {
            group_by = Some(projection[rng.below(nproj as u64) as usize]);
        }
        let int_positions: Vec<usize> = projection
            .iter()
            .enumerate()
            .filter(|&(_, &c)| plan.schema.dtype(c) == DataType::Int)
            .map(|(p, _)| p)
            .collect();
        for _ in 0..1 + rng.below(2) as usize {
            let choice = if int_positions.is_empty() {
                0
            } else {
                rng.below(4)
            };
            aggs.push(if choice == 0 {
                AggSpec::count()
            } else {
                let p = int_positions[rng.below(int_positions.len() as u64) as usize];
                match choice {
                    1 => AggSpec::sum(p),
                    2 => AggSpec::min(p),
                    _ => AggSpec::max(p),
                }
            });
        }
    }
    RiderQuery {
        projection,
        predicates,
        group_by,
        aggs,
        sorted_agg: false,
    }
}

/// Build one rider as a [`QueryBuilder`] under `sys`. Every rider scales to
/// the same virtual row count — the service requires one shared clock scale,
/// and a multi-second modeled pass is what makes late arrivals attach
/// mid-scan instead of finding an idle cursor.
fn build_rider(
    table: &Arc<Table>,
    layout: ScanLayout,
    r: &RiderQuery,
    hw: HardwareConfig,
    sys: SystemConfig,
) -> rodb_types::Result<QueryBuilder> {
    let mut q = QueryBuilder::new(table.clone(), hw, sys)
        .layout(layout)
        .select_indices(&r.projection)
        .scale_to_rows(10_000_000);
    for p in &r.predicates {
        q = q.filter_pred(p.clone())?;
    }
    if let Some(g) = r.group_by {
        q = q.group_by(&format!("c{g}"))?;
    }
    for a in &r.aggs {
        q = q.aggregate(*a);
    }
    if r.sorted_agg {
        q = q.sorted_aggregation();
    }
    Ok(q)
}

/// Concurrent-mode case: the seed's plan plus 1..=3 drawn riders go through
/// the query service — mixed arrival order, drawn admission discipline,
/// tenants and priorities, with and without the shared page cache — and
/// every query's rows must be bit-identical to its own solo run. The
/// scheduler is a scan-sharing layer, never an answer change.
pub fn run_concurrent_case(seed: u64) -> Result<(), String> {
    let plan = gen::generate(seed);
    if plan.rows.is_empty() {
        // A shared cursor needs at least one page to segment; empty tables
        // are covered by every other mode.
        return Ok(());
    }
    let table = Arc::new(
        catching(|| build_table(&plan))
            .map_err(|p| format!("seed {seed}: build panicked: {p}"))?
            .map_err(|e| format!("seed {seed}: build failed: {e:?}"))?,
    );
    // The cursor generalizes scan sharing to the Row and Column layouts;
    // the slow column variants are execution strategies of the same column
    // files, so they fold onto the Column cursor here.
    let layout = match plan.layout {
        ScanLayout::Row => ScanLayout::Row,
        _ => ScanLayout::Column,
    };

    // Concurrency draws come from their own stream so the base plan for
    // this seed is exactly what the healthy/fault/recovery/cache modes ran.
    let mut rng = SplitMix64::new(seed ^ 0xc0c0_17ab_5eed_5eed);
    let mut riders = vec![RiderQuery {
        projection: plan.projection.clone(),
        predicates: plan.predicates.clone(),
        group_by: plan.group_by,
        aggs: plan.aggs.clone(),
        sorted_agg: plan.sorted_agg,
    }];
    let k = 2 + rng.below(3) as usize;
    while riders.len() < k {
        riders.push(draw_rider(&mut rng, &plan));
    }
    let arrivals: Vec<f64> = (0..k)
        .map(|i| if i == 0 { 0.0 } else { rng.f64() * 1.5 })
        .collect();
    let tenants: Vec<&str> = (0..k)
        .map(|_| ["a", "b", "c"][rng.below(3) as usize])
        .collect();
    let priorities: Vec<u8> = (0..k).map(|_| rng.below(10) as u8).collect();
    let spec = ServiceSpec::new(1 + rng.below(k as u64) as usize)
        .with_slice([0.1, 0.25, 0.5][rng.below(3) as usize])
        .with_admission(if rng.bool() {
            Admission::Priority
        } else {
            Admission::Fifo
        });

    let base_sys = SystemConfig {
        page_size: plan.page_size,
        threads: plan.threads,
        scan_fast_path: plan.scan_fast_path,
        ..SystemConfig::default()
    };

    // Solo baseline per rider: the ordinary bypassed engine, no cache.
    let mut want: Vec<Vec<Vec<Value>>> = Vec::with_capacity(k);
    for (i, r) in riders.iter().enumerate() {
        let rows = catching(|| {
            build_rider(&table, layout, r, HardwareConfig::default(), base_sys)?.run_collect()
        })
        .map_err(|p| {
            format!(
                "seed {seed}: solo rider {i} panicked: {p}\n  case: {}",
                plan.describe()
            )
        })?
        .map_err(|e| {
            format!(
                "seed {seed}: solo rider {i} failed: {e:?}\n  case: {}",
                plan.describe()
            )
        })?
        .rows;
        want.push(rows);
    }

    for cache in [None, Some(plan.cache)] {
        let sys = SystemConfig {
            service: Some(spec),
            cache,
            ..base_sys
        };
        let what = format!(
            "{k} queries, max_inflight {}, {:?}, cache={}",
            spec.max_inflight,
            spec.admission,
            cache.is_some()
        );
        let mut svc = QueryService::new(HardwareConfig::default(), sys)
            .map_err(|e| format!("seed {seed}: service rejected config: {e:?}"))?;
        for (i, r) in riders.iter().enumerate() {
            let q = build_rider(&table, layout, r, HardwareConfig::default(), sys)
                .map_err(|e| format!("seed {seed}: rider {i} build failed: {e:?}"))?;
            svc.submit(
                ServiceRequest::new(q)
                    .at(arrivals[i])
                    .tenant(tenants[i])
                    .priority(priorities[i]),
            );
        }
        let report = catching(|| svc.run())
            .map_err(|p| {
                format!(
                    "seed {seed}: service PANIC ({what}): {p}\n  case: {}",
                    plan.describe()
                )
            })?
            .map_err(|e| {
                format!(
                    "seed {seed}: service run failed ({what}): {e:?}\n  case: {}",
                    plan.describe()
                )
            })?;
        if report.outcomes.len() != k {
            return Err(format!(
                "seed {seed}: {} outcomes for {k} requests ({what})",
                report.outcomes.len()
            ));
        }
        for (i, out) in report.outcomes.iter().enumerate() {
            if out.rejected {
                return Err(format!(
                    "seed {seed}: rider {i} rejected with no deadline configured ({what})\n  \
                     case: {}",
                    plan.describe()
                ));
            }
            if out.rows != want[i] {
                return Err(format!(
                    "seed {seed}: rider {i} MISMATCH through the scheduler ({what}): service \
                     {} rows, solo {} rows\n  case: {}\n  service: {:?}\n  solo: {:?}",
                    out.rows.len(),
                    want[i].len(),
                    plan.describe(),
                    out.rows,
                    want[i],
                ));
            }
        }
        if cache.is_none() && report.io.cache != rodb_io::CacheStats::default() {
            return Err(format!(
                "seed {seed}: cache-off service run reported cache activity {:?} ({what})",
                report.io.cache
            ));
        }
    }
    Ok(())
}

/// Observe-mode case: the concurrent-style service workload run twice —
/// observability off, then fully on (timelines + flight recorder + SLO
/// accounting, a drawn window/K/reservoir geometry) — demanding the
/// modeled system is **bit-identical** either way: every query's rows, the
/// makespan and per-query latency clocks (compared by f64 bits), the I/O
/// accounting, and the segment/wraparound counts. Observation must never
/// perturb the simulation. The observed run's plane must also reconcile
/// with the report it rode along with: timeline counter totals equal to
/// outcome counts, every deadline-missed completion retained by the flight
/// recorder in its completion window, and per-tenant SLO counts and
/// quantiles equal to a Vec oracle over the outcomes.
pub fn run_observe_case(seed: u64) -> Result<(), String> {
    let plan = gen::generate(seed);
    if plan.rows.is_empty() {
        return Ok(());
    }
    let table = Arc::new(
        catching(|| build_table(&plan))
            .map_err(|p| format!("seed {seed}: build panicked: {p}"))?
            .map_err(|e| format!("seed {seed}: build failed: {e:?}"))?,
    );
    let layout = match plan.layout {
        ScanLayout::Row => ScanLayout::Row,
        _ => ScanLayout::Column,
    };

    // A distinct draw stream: this mode's workloads need not match the
    // concurrent mode's for the same seed, only be self-reproducible.
    let mut rng = SplitMix64::new(seed ^ 0x0b5e_7e5e_ed15_c0de);
    let mut riders = vec![RiderQuery {
        projection: plan.projection.clone(),
        predicates: plan.predicates.clone(),
        group_by: plan.group_by,
        aggs: plan.aggs.clone(),
        sorted_agg: plan.sorted_agg,
    }];
    let k = 2 + rng.below(3) as usize;
    while riders.len() < k {
        riders.push(draw_rider(&mut rng, &plan));
    }
    let arrivals: Vec<f64> = (0..k)
        .map(|i| if i == 0 { 0.0 } else { rng.f64() * 1.5 })
        .collect();
    let tenants: Vec<&str> = (0..k)
        .map(|_| ["a", "b", "c"][rng.below(3) as usize])
        .collect();
    let priorities: Vec<u8> = (0..k).map(|_| rng.below(10) as u8).collect();
    let mut spec = ServiceSpec::new(1 + rng.below(k as u64) as usize)
        .with_slice([0.1, 0.25, 0.5][rng.below(3) as usize])
        .with_admission(if rng.bool() {
            Admission::Priority
        } else {
            Admission::Fifo
        });
    // Half the cases run with a deadline so the rejection / deadline-miss
    // paths (and their flight-recorder anomaly retention) get exercised.
    if rng.bool() {
        spec = spec.with_deadline(0.25 + rng.f64());
    }
    let cache = if rng.bool() { Some(plan.cache) } else { None };
    let base_sys = SystemConfig {
        page_size: plan.page_size,
        threads: plan.threads,
        scan_fast_path: plan.scan_fast_path,
        ..SystemConfig::default()
    };
    let ospec = ObserveSpec::new([0.25, 0.5, 1.0][rng.below(3) as usize])
        .with_flight_k(1 + rng.below(4) as usize)
        .with_reservoir(rng.below(5) as usize);

    let run = |observe: Option<ObserveSpec>| -> Result<ServiceReport, String> {
        let sys = SystemConfig {
            service: Some(spec),
            cache,
            observe,
            ..base_sys
        };
        // Each run owns its registry: sweeps never pollute the global one.
        let mut svc = QueryService::new(HardwareConfig::default(), sys)
            .map_err(|e| format!("seed {seed}: service rejected config: {e:?}"))?
            .metrics(Registry::handle());
        for (i, r) in riders.iter().enumerate() {
            let q = build_rider(&table, layout, r, HardwareConfig::default(), sys)
                .map_err(|e| format!("seed {seed}: rider {i} build failed: {e:?}"))?;
            svc.submit(
                ServiceRequest::new(q)
                    .at(arrivals[i])
                    .tenant(tenants[i])
                    .priority(priorities[i]),
            );
        }
        catching(|| svc.run())
            .map_err(|p| {
                format!(
                    "seed {seed}: service PANIC (observe={}): {p}\n  case: {}",
                    observe.is_some(),
                    plan.describe()
                )
            })?
            .map_err(|e| {
                format!(
                    "seed {seed}: service run failed (observe={}): {e:?}\n  case: {}",
                    observe.is_some(),
                    plan.describe()
                )
            })
    };
    let off = run(None)?;
    let on = run(Some(ospec))?;

    // --- The modeled system must be bit-identical. ---
    if off.observed.is_some() {
        return Err(format!("seed {seed}: observe-off run carries a plane"));
    }
    if on.makespan_s.to_bits() != off.makespan_s.to_bits() {
        return Err(format!(
            "seed {seed}: observation PERTURBED the clock: makespan {} (on) vs {} (off)",
            on.makespan_s, off.makespan_s
        ));
    }
    if (on.segments, on.wraparounds) != (off.segments, off.wraparounds) {
        return Err(format!(
            "seed {seed}: segment/wrap divergence: ({}, {}) on vs ({}, {}) off",
            on.segments, on.wraparounds, off.segments, off.wraparounds
        ));
    }
    if on.io != off.io {
        return Err(format!(
            "seed {seed}: I/O accounting divergence:\n  on:  {:?}\n  off: {:?}",
            on.io, off.io
        ));
    }
    if on.outcomes.len() != off.outcomes.len() {
        return Err(format!("seed {seed}: outcome count divergence"));
    }
    for (i, (a, b)) in on.outcomes.iter().zip(&off.outcomes).enumerate() {
        let clocks_match = a.latency_s.to_bits() == b.latency_s.to_bits()
            && a.queue_wait_s.to_bits() == b.queue_wait_s.to_bits();
        if !clocks_match
            || a.rows != b.rows
            || a.nrows != b.nrows
            || (a.rejected, a.deadline_missed, a.wrapped, a.attach_seg)
                != (b.rejected, b.deadline_missed, b.wrapped, b.attach_seg)
        {
            return Err(format!(
                "seed {seed}: outcome {i} diverged under observation\n  on:  latency {} wait {} \
                 rows {} rejected {}\n  off: latency {} wait {} rows {} rejected {}\n  case: {}",
                a.latency_s,
                a.queue_wait_s,
                a.nrows,
                a.rejected,
                b.latency_s,
                b.queue_wait_s,
                b.nrows,
                b.rejected,
                plan.describe()
            ));
        }
    }

    // --- The plane must reconcile with the report it rode along with. ---
    let obs = on
        .observed
        .as_ref()
        .ok_or_else(|| format!("seed {seed}: observe-on run has no plane"))?;
    let completed = on.outcomes.iter().filter(|o| !o.rejected).count() as f64;
    let rejected = on.outcomes.iter().filter(|o| o.rejected).count() as f64;
    let tl_completed = obs.timeline.counter_total("service.completed");
    let tl_rejected = obs.timeline.counter_total("service.rejected");
    if (tl_completed, tl_rejected) != (completed, rejected) {
        return Err(format!(
            "seed {seed}: timeline does not reconcile: ({tl_completed}, {tl_rejected}) vs \
             outcomes ({completed}, {rejected})"
        ));
    }
    for (i, o) in on.outcomes.iter().enumerate() {
        if o.deadline_missed && !o.rejected {
            let w = obs.flight.window_of(o.arrival_s + o.latency_s);
            if !obs
                .flight
                .anomalies(w)
                .iter()
                .any(|e| e.seq == i as u64 && e.deadline_missed)
            {
                return Err(format!(
                    "seed {seed}: deadline-missed query {i} not retained by the flight \
                     recorder in window {w}"
                ));
            }
        }
    }
    for slo in &obs.slo.tenants {
        let outs: Vec<_> = on
            .outcomes
            .iter()
            .filter(|o| o.tenant == slo.tenant)
            .collect();
        let done = outs.iter().filter(|o| !o.rejected).count() as u64;
        let rej = outs.iter().filter(|o| o.rejected).count() as u64;
        if (slo.completed, slo.rejected) != (done, rej) {
            return Err(format!(
                "seed {seed}: tenant {} SLO counts ({}, {}) vs outcomes ({done}, {rej})",
                slo.tenant, slo.completed, slo.rejected
            ));
        }
        // Quantiles against the sorted-Vec oracle (populations here are
        // far below the histogram's exact-sample cap).
        let mut lats: Vec<f64> = outs
            .iter()
            .filter(|o| !o.rejected)
            .map(|o| o.latency_s)
            .collect();
        lats.sort_by(f64::total_cmp);
        for q in [0.5, 0.95, 0.99] {
            let want = if lats.is_empty() {
                0.0
            } else {
                lats[((lats.len() - 1) as f64 * q).round() as usize]
            };
            let got = slo.latency.quantile(q);
            if got.to_bits() != want.to_bits() {
                return Err(format!(
                    "seed {seed}: tenant {} p{} {} != oracle {}",
                    slo.tenant,
                    (q * 100.0) as u32,
                    got,
                    want
                ));
            }
        }
    }
    Ok(())
}

/// Global row ordinals covered by a quarantined page, derived from file
/// geometry the same way the scanners rebase (page index × full-page
/// capacity, clamped to the table's row count).
fn mark_quarantined_span(table: &Table, q: QuarantinedPage, dropped: &mut [bool]) {
    let (start, cap) = match q {
        QuarantinedPage::Row { page } => {
            let tpp = table.row.as_ref().map(|r| r.tuples_per_page).unwrap_or(0) as u64;
            (page * tpp, tpp)
        }
        QuarantinedPage::Col { col, page } => {
            let vpp = table
                .col
                .as_ref()
                .map(|c| c.columns[col].values_per_page)
                .unwrap_or(0) as u64;
            (page * vpp, vpp)
        }
    };
    let end = (start + cap).min(dropped.len() as u64);
    for p in start..end {
        dropped[p as usize] = true;
    }
}

/// Recovery-mode case, two halves.
///
/// **Mirrored repair** (mirror = 2, every primary read damaged, policy
/// `Retry`): the second replica is always clean (`replica_rate_ppm` = 0), so
/// every damaged read must be repaired transparently and the rows must be
/// bit-identical to the oracle — nothing quarantined, nothing dropped, and
/// every retry accounted as a repair.
///
/// **Degraded scan** (mirror = 1, policy `Skip`, 100 % and ~15 % fault
/// rates): pages bad on the only replica are quarantined and their rows
/// dropped. The result must equal the oracle evaluated over exactly the
/// surviving positions — the complement of the quarantined pages' row
/// spans — and the serial run's `dropped_rows` must equal that span union.
/// A parallel run must produce the same rows and the same quarantine set;
/// its `dropped_rows` may undercount the union (a straddling page demanded
/// by only one morsel charges only that morsel's window) but never exceed
/// it, and is non-zero whenever anything was quarantined.
pub fn run_recovery_case(seed: u64) -> Result<(), String> {
    let plan = gen::generate(seed);
    let want = oracle::expected(&plan);

    // --- Mode A: mirrored reads repair every damaged page. ---
    let table = catching(|| build_table(&plan))
        .map_err(|p| format!("seed {seed}: build panicked: {p}"))?
        .map_err(|e| format!("seed {seed}: build failed: {e:?}"))?;
    for threads in thread_counts(&plan) {
        let res = catching(|| {
            execute(
                &plan,
                table.clone(),
                threads,
                plan.scan_fast_path,
                Some(FaultSpec::always(seed)),
                2,
                OnCorrupt::Retry,
            )
        })
        .map_err(|p| {
            format!(
                "seed {seed}: PANIC under mirrored faults ({threads} threads): {p}\n  case: {}",
                plan.describe()
            )
        })?
        .map_err(|e| {
            format!(
                "seed {seed}: mirrored run failed ({threads} threads): {e:?}\n  case: {}",
                plan.describe()
            )
        })?;
        if res.rows != want {
            return Err(format!(
                "seed {seed}: mirrored run MISMATCH ({threads} threads): engine {} rows, \
                 oracle {} rows\n  case: {}",
                res.rows.len(),
                want.len(),
                plan.describe()
            ));
        }
        let rec = res.report.io.recovery;
        if rec.quarantined_pages != 0 || rec.dropped_rows != 0 {
            return Err(format!(
                "seed {seed}: mirrored run quarantined {} pages / dropped {} rows with a clean \
                 replica available ({threads} threads)\n  case: {}",
                rec.quarantined_pages,
                rec.dropped_rows,
                plan.describe()
            ));
        }
        if rec.repairs != rec.retries {
            return Err(format!(
                "seed {seed}: mirrored run: {} retries but {} repairs — the clean replica must \
                 repair every retry ({threads} threads)\n  case: {}",
                rec.retries,
                rec.repairs,
                plan.describe()
            ));
        }
        if !table.quarantine.is_empty() {
            return Err(format!(
                "seed {seed}: mirrored run left {} pages in the table quarantine\n  case: {}",
                table.quarantine.len(),
                plan.describe()
            ));
        }
    }

    // --- Mode B: single replica, Skip policy, degraded results. ---
    for rate in [1_000_000u32, 150_000] {
        // The quarantine is shared across clones of a table handle, so every
        // run gets a freshly built table.
        let mut serial_rows: Option<Vec<Vec<rodb_types::Value>>> = None;
        let mut serial_quarantine: Option<Vec<QuarantinedPage>> = None;
        let mut serial_union = 0u64;
        for threads in thread_counts(&plan) {
            let table = catching(|| build_table(&plan))
                .map_err(|p| format!("seed {seed}: build panicked: {p}"))?
                .map_err(|e| format!("seed {seed}: build failed: {e:?}"))?;
            let res = catching(|| {
                execute(
                    &plan,
                    table.clone(),
                    threads,
                    plan.scan_fast_path,
                    Some(FaultSpec::at_rate(seed, rate)),
                    1,
                    OnCorrupt::Skip,
                )
            })
            .map_err(|p| {
                format!(
                    "seed {seed}: PANIC in degraded scan (rate {rate}, {threads} threads): {p}\n  \
                     case: {}",
                    plan.describe()
                )
            })?
            .map_err(|e| {
                format!(
                    "seed {seed}: degraded scan failed (rate {rate}, {threads} threads): {e:?}\n  \
                     case: {}",
                    plan.describe()
                )
            })?;

            let snapshot = table.quarantine.snapshot();
            let mut dropped = vec![false; plan.rows.len()];
            for &q in &snapshot {
                mark_quarantined_span(&table, q, &mut dropped);
            }
            let union: u64 = dropped.iter().filter(|&&d| d).count() as u64;

            // Expected rows: the oracle over the surviving positions.
            let mut degraded = plan.clone();
            degraded.rows = plan
                .rows
                .iter()
                .zip(&dropped)
                .filter(|&(_, &d)| !d)
                .map(|(r, _)| r.clone())
                .collect();
            let want_sub = oracle::expected(&degraded);
            if res.rows != want_sub {
                return Err(format!(
                    "seed {seed}: degraded scan MISMATCH (rate {rate}, {threads} threads): \
                     engine {} rows, oracle-over-survivors {} rows ({} of {} positions \
                     dropped)\n  case: {}",
                    res.rows.len(),
                    want_sub.len(),
                    union,
                    plan.rows.len(),
                    plan.describe()
                ));
            }
            let rec = res.report.io.recovery;
            if rec.quarantined_pages != snapshot.len() as u64 {
                return Err(format!(
                    "seed {seed}: degraded scan counted {} quarantined pages but the table \
                     quarantine holds {} (rate {rate}, {threads} threads)\n  case: {}",
                    rec.quarantined_pages,
                    snapshot.len(),
                    plan.describe()
                ));
            }
            if threads == 1 {
                if rec.dropped_rows != union {
                    return Err(format!(
                        "seed {seed}: serial degraded scan dropped_rows {} != quarantined span \
                         union {} (rate {rate})\n  case: {}",
                        rec.dropped_rows,
                        union,
                        plan.describe()
                    ));
                }
                serial_rows = Some(res.rows);
                serial_quarantine = Some(snapshot);
                serial_union = union;
            } else {
                if rec.dropped_rows > union || (union > 0 && rec.dropped_rows == 0) {
                    return Err(format!(
                        "seed {seed}: parallel degraded scan dropped_rows {} outside (0, {}] \
                         (rate {rate}, {threads} threads)\n  case: {}",
                        rec.dropped_rows,
                        union,
                        plan.describe()
                    ));
                }
                if let Some(sq) = &serial_quarantine {
                    if *sq != snapshot {
                        return Err(format!(
                            "seed {seed}: parallel degraded scan quarantined {:?}, serial \
                             quarantined {:?} (rate {rate}, {threads} threads)\n  case: {}",
                            snapshot,
                            sq,
                            plan.describe()
                        ));
                    }
                    if union != serial_union {
                        return Err(format!(
                            "seed {seed}: span union changed across runs: serial {}, parallel \
                             {} (rate {rate})\n  case: {}",
                            serial_union,
                            union,
                            plan.describe()
                        ));
                    }
                }
                if let Some(sr) = &serial_rows {
                    if *sr != res.rows {
                        return Err(format!(
                            "seed {seed}: parallel degraded rows differ from serial (rate \
                             {rate}, {threads} threads)\n  case: {}",
                            plan.describe()
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// One logged ingest operation. [`IngestOp::frame_len`] predicts its WAL
/// frame extent from the *documented* arithmetic alone — header
/// `len(4) + seq(8) + kind(1)`, insert payload `4 + n × logical_width`,
/// merge markers `16`, trailing `crc(4)` — sharing no framing code with the
/// engine, so an encoding bug cannot cancel itself out of the crash model.
enum IngestOp {
    Insert(Vec<Vec<Value>>),
    MergeBegin,
    MergeCommit(usize),
}

const WAL_HEADER: usize = 4 + 8 + 1;
const WAL_CRC: usize = 4;

impl IngestOp {
    fn frame_len(&self, logical_width: usize) -> usize {
        let payload = match self {
            IngestOp::Insert(rows) => 4 + rows.len() * logical_width,
            IngestOp::MergeBegin | IngestOp::MergeCommit(_) => 16,
        };
        WAL_HEADER + payload + WAL_CRC
    }
}

/// Vec-of-tuples model of the durable store: the read-optimized rows in
/// engine scan order, the staged tail in arrival order, and the epoch.
#[derive(Clone, PartialEq)]
struct IngestModel {
    ros: Vec<Vec<Value>>,
    wos: Vec<Vec<Value>>,
    epoch: u64,
}

impl IngestModel {
    /// A committed merge moves the frozen prefix of `n` staged rows into the
    /// read-optimized set and (when a sort key is configured) re-sorts it —
    /// a stable sort, exactly like the engine's rebuild.
    fn commit(&mut self, n: usize, sort_by: Option<usize>) {
        let moved: Vec<Vec<Value>> = self.wos.drain(..n).collect();
        self.ros.extend(moved);
        if let Some(k) = sort_by {
            self.ros.sort_by(|a, b| a[k].cmp(&b[k]));
        }
        self.epoch += 1;
    }
}

/// Fold the ops whose predicted frames fit inside the first `k` log bytes —
/// the model's prediction of what recovery from a crash at byte `k` must
/// rebuild.
fn fold_model(
    base: &[Vec<Value>],
    ops: &[IngestOp],
    width: usize,
    k: usize,
    sort_by: Option<usize>,
) -> IngestModel {
    let mut m = IngestModel {
        ros: base.to_vec(),
        wos: Vec::new(),
        epoch: 0,
    };
    let mut off = 0usize;
    for op in ops {
        off += op.frame_len(width);
        if off > k {
            break;
        }
        match op {
            IngestOp::Insert(rows) => m.wos.extend(rows.iter().cloned()),
            // A begin without its commit is an aborted merge: nothing to redo.
            IngestOp::MergeBegin => {}
            IngestOp::MergeCommit(n) => m.commit(*n, sort_by),
        }
    }
    m
}

/// Adapt a generated plan for ingest mode and draw the ingest-only knobs
/// from a separate stream (existing seeds keep their exact plans in every
/// other mode).
///
/// A merge re-sorts on at most one key, so the first FOR-delta column (which
/// *requires* sorted input) becomes the sort key and any further FOR-delta
/// columns are demoted to uncompressed; without one the key is a free draw.
/// Sorted aggregation is dropped: merges re-order rows and the staged tail
/// is unsorted, so the "globally sorted group key" precondition no longer
/// holds.
fn ingest_plan(seed: u64) -> (gen::CasePlan, Option<usize>, IngestSpec, SplitMix64) {
    let mut plan = gen::generate(seed);
    let mut rng = SplitMix64::new(seed ^ 0x16e5_7a11_0c5e_ed17);
    let fordelta: Vec<usize> = plan
        .comps
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.codec, Codec::ForDelta { .. }))
        .map(|(i, _)| i)
        .collect();
    let sort_by = match fordelta.first() {
        Some(&k) => Some(k),
        None if rng.bool() => Some(rng.below(plan.schema.len() as u64) as usize),
        None => None,
    };
    for (i, c) in plan.comps.iter_mut().enumerate() {
        if matches!(c.codec, Codec::ForDelta { .. }) && Some(i) != sort_by {
            *c = ColumnCompression::none();
        }
    }
    plan.sorted_agg = false;
    let spec = if rng.below(10) < 3 {
        IngestSpec::manual().with_auto_merge(1 + rng.below(6) as usize)
    } else {
        IngestSpec::manual()
    };
    (plan, sort_by, spec, rng)
}

/// Drive a drawn insert/merge schedule through the real [`IngestStore`]
/// while recording every op (in *log* order) and maintaining the live
/// model. Inserted rows are sampled from the plan's own rows so every
/// data-dependent codec domain (BitPack range, FOR span, dictionaries,
/// FOR-delta adjacent gaps, TextPack content width) stays valid across
/// merges.
fn drive_ingest(
    seed: u64,
    plan: &gen::CasePlan,
    base: Arc<Table>,
    sort_by: Option<usize>,
    spec: IngestSpec,
    rng: &mut SplitMix64,
) -> Result<(IngestStore, Vec<IngestOp>, IngestModel), String> {
    let mut st = IngestStore::new(base, plan.comps.clone(), sort_by, spec)
        .map_err(|e| format!("seed {seed}: ingest store rejected the plan: {e:?}"))?;
    let mut ops: Vec<IngestOp> = Vec::new();
    let mut model = IngestModel {
        ros: plan.rows.clone(),
        wos: Vec::new(),
        epoch: 0,
    };
    // The frozen row count of a begun-but-uncommitted merge.
    let mut pending: Option<usize> = None;

    let insert = |st: &mut IngestStore,
                  ops: &mut Vec<IngestOp>,
                  model: &mut IngestModel,
                  pending: &Option<usize>,
                  rng: &mut SplitMix64|
     -> Result<(), String> {
        let n = 1 + rng.below(8) as usize;
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| plan.rows[rng.below(plan.rows.len() as u64) as usize].clone())
            .collect();
        st.insert(rows.clone())
            .map_err(|e| format!("seed {seed}: insert of {n} sampled rows failed: {e:?}"))?;
        ops.push(IngestOp::Insert(rows.clone()));
        model.wos.extend(rows);
        // Mirror the auto-merge: threshold reached, no pending merge.
        if spec.auto_merge_rows > 0 && pending.is_none() && model.wos.len() >= spec.auto_merge_rows
        {
            let full = model.wos.len();
            ops.push(IngestOp::MergeBegin);
            ops.push(IngestOp::MergeCommit(full));
            model.commit(full, sort_by);
        }
        Ok(())
    };

    let nops = 3 + rng.below(6);
    for _ in 0..nops {
        let r = rng.below(100);
        if let Some(frozen) = pending {
            if r < 60 {
                insert(&mut st, &mut ops, &mut model, &pending, rng)?;
            } else {
                st.commit_merge()
                    .map_err(|e| format!("seed {seed}: commit_merge failed: {e:?}"))?;
                ops.push(IngestOp::MergeCommit(frozen));
                model.commit(frozen, sort_by);
                pending = None;
            }
        } else if r < 55 {
            insert(&mut st, &mut ops, &mut model, &pending, rng)?;
        } else if r < 80 {
            // Full merge; a no-op on an empty WOS leaves no WAL record.
            let full = model.wos.len();
            st.merge()
                .map_err(|e| format!("seed {seed}: merge failed: {e:?}"))?;
            if full > 0 {
                ops.push(IngestOp::MergeBegin);
                ops.push(IngestOp::MergeCommit(full));
                model.commit(full, sort_by);
            }
        } else {
            let frozen = model.wos.len();
            st.begin_merge()
                .map_err(|e| format!("seed {seed}: begin_merge failed: {e:?}"))?;
            ops.push(IngestOp::MergeBegin);
            pending = Some(frozen);
        }
    }
    if let Some(frozen) = pending {
        if rng.bool() {
            st.commit_merge()
                .map_err(|e| format!("seed {seed}: final commit_merge failed: {e:?}"))?;
            ops.push(IngestOp::MergeCommit(frozen));
            model.commit(frozen, sort_by);
        }
        // Otherwise the log ends with an uncommitted begin — recovery must
        // treat it as aborted.
    }
    Ok((st, ops, model))
}

/// The recovered (or snapshotted) store must match the model exactly: same
/// epoch, same staged tail in arrival order, same read-optimized rows in
/// scan order.
fn check_against_model(
    st: &IngestStore,
    m: &IngestModel,
    seed: u64,
    plan: &gen::CasePlan,
    what: &str,
) -> Result<(), String> {
    let snap = st.snapshot();
    if snap.epoch != m.epoch {
        return Err(format!(
            "seed {seed}: epoch {} != model {} ({what})\n  case: {}",
            snap.epoch,
            m.epoch,
            plan.describe()
        ));
    }
    if *snap.tail != m.wos {
        return Err(format!(
            "seed {seed}: staged tail diverges from model ({what}): {} vs {} rows\n  case: {}",
            snap.tail.len(),
            m.wos.len(),
            plan.describe()
        ));
    }
    let ros = snap
        .ros
        .read_all(Layout::Row)
        .map_err(|e| format!("seed {seed}: recovered ROS unreadable ({what}): {e:?}"))?;
    if ros != m.ros {
        return Err(format!(
            "seed {seed}: ROS rows diverge from model ({what}): {} vs {} rows\n  case: {}",
            ros.len(),
            m.ros.len(),
            plan.describe()
        ));
    }
    Ok(())
}

/// Run the plan's query over an ingest snapshot (ROS scan + spliced staged
/// tail) under the given execution knobs.
fn run_snapshot_query(
    plan: &gen::CasePlan,
    snap: &rodb_core::IngestSnapshot,
    threads: usize,
    fast: bool,
    cache: Option<CacheSpec>,
) -> rodb_types::Result<QueryResult> {
    let sys = SystemConfig {
        page_size: plan.page_size,
        threads,
        scan_fast_path: fast,
        cache,
        ..SystemConfig::default()
    };
    let mut q = QueryBuilder::new(snap.ros.clone(), HardwareConfig::default(), sys)
        .layout(plan.layout)
        .select_indices(&plan.projection)
        .wos_tail(snap.tail.clone());
    for p in &plan.predicates {
        q = q.filter_pred(p.clone())?;
    }
    if let Some(g) = plan.group_by {
        q = q.group_by(&format!("c{g}"))?;
    }
    for a in &plan.aggs {
        q = q.aggregate(*a);
    }
    q.run_collect()
}

/// Ingest-mode case: a drawn insert/merge/crash schedule against the durable
/// write path, checked four ways.
///
/// 1. **Framing**: the WAL image length must equal the model's documented
///    frame arithmetic summed over the logged ops.
/// 2. **Crash points**: recovery from a clean truncation at every record
///    boundary, every boundary − 1, and sampled interior offsets must
///    rebuild exactly the model's fold of the surviving records — and the
///    full-image recovery must re-derive the live store's row pages
///    **bit-identically**.
/// 3. **Corrupting crashes**: recovery from a bit-flipped image must never
///    panic and must rebuild the model state at the longest valid prefix.
/// 4. **Snapshot reads**: the plan's query over the final snapshot must
///    match the oracle over `model ROS ++ staged tail` across
///    {serial, parallel} × {scalar, fast path} × {cache on, off} — the tail
///    splice is a visibility rule, never an answer change.
pub fn run_ingest_case(seed: u64) -> Result<(), String> {
    let (plan, sort_by, spec, mut rng) = ingest_plan(seed);
    if plan.rows.is_empty() {
        // Sampled inserts need a pool; empty tables are covered by every
        // other mode (and by the core crate's ingest tests).
        return Ok(());
    }
    let width = plan.schema.logical_width();
    let base = Arc::new(
        catching(|| build_table(&plan))
            .map_err(|p| format!("seed {seed}: build panicked: {p}"))?
            .map_err(|e| format!("seed {seed}: build failed: {e:?}"))?,
    );
    let (st, ops, model) =
        catching(|| drive_ingest(seed, &plan, base.clone(), sort_by, spec, &mut rng)).map_err(
            |p| {
                format!(
                    "seed {seed}: PANIC in ingest schedule: {p}\n  case: {}",
                    plan.describe()
                )
            },
        )??;

    // 1. The documented frame arithmetic is the real format.
    let image = st.wal_image().to_vec();
    let model_len: usize = ops.iter().map(|o| o.frame_len(width)).sum();
    if image.len() != model_len {
        return Err(format!(
            "seed {seed}: WAL image {} bytes, frame arithmetic predicts {model_len}\n  case: {}",
            image.len(),
            plan.describe()
        ));
    }

    // Live store vs the live model.
    check_against_model(&st, &model, seed, &plan, "live store")?;

    // 2. Clean-truncation crash points.
    let mut ends = Vec::with_capacity(ops.len());
    let mut off = 0usize;
    for op in &ops {
        off += op.frame_len(width);
        ends.push(off);
    }
    let mut offsets: std::collections::BTreeSet<usize> = [0usize].into();
    for &e in &ends {
        offsets.insert(e);
        offsets.insert(e - 1);
    }
    for _ in 0..8 {
        offsets.insert(rng.below(image.len() as u64 + 1) as usize);
    }
    for &k in &offsets {
        let (rec, rep) = catching(|| {
            IngestStore::recover(
                base.clone(),
                plan.comps.clone(),
                sort_by,
                spec,
                &image[..k],
                None,
            )
        })
        .map_err(|p| {
            format!(
                "seed {seed}: PANIC recovering crash at byte {k}: {p}\n  case: {}",
                plan.describe()
            )
        })?
        .map_err(|e| {
            format!(
                "seed {seed}: recovery failed on a clean prefix at byte {k}: {e:?}\n  case: {}",
                plan.describe()
            )
        })?;
        let m = fold_model(&plan.rows, &ops, width, k, sort_by);
        check_against_model(&rec, &m, seed, &plan, &format!("crash at byte {k}"))?;
        let durable = ends.iter().filter(|&&e| e <= k).count() as u64;
        if rep.replayed != durable {
            return Err(format!(
                "seed {seed}: crash at byte {k} replayed {} records, model says {durable}\n  \
                 case: {}",
                rep.replayed,
                plan.describe()
            ));
        }
        if k == image.len() {
            // Full-image recovery re-derives the live pages bit-identically.
            let (live, redo) = (st.ros(), rec.ros());
            let same = match (live.row.as_ref(), redo.row.as_ref()) {
                (Some(a), Some(b)) => a.file == b.file,
                (None, None) => true,
                _ => false,
            };
            if !same {
                return Err(format!(
                    "seed {seed}: full-image recovery rebuilt different row pages\n  case: {}",
                    plan.describe()
                ));
            }
        }
    }

    // 3. Corrupting crashes: never panic, recover the longest valid prefix.
    for _ in 0..6 {
        if image.is_empty() {
            break;
        }
        let i = rng.below(image.len() as u64) as usize;
        let bit = 1u8 << rng.below(8);
        let mut dmg = image.clone();
        dmg[i] ^= bit;
        let (rec, rep) = catching(|| {
            IngestStore::recover(base.clone(), plan.comps.clone(), sort_by, spec, &dmg, None)
        })
        .map_err(|p| {
            format!(
                "seed {seed}: PANIC recovering flipped byte {i}: {p}\n  case: {}",
                plan.describe()
            )
        })?
        .map_err(|e| {
            format!(
                "seed {seed}: recovery errored on flipped byte {i} (must degrade to the valid \
                 prefix): {e:?}\n  case: {}",
                plan.describe()
            )
        })?;
        let m = fold_model(&plan.rows, &ops, width, rep.valid_len, sort_by);
        check_against_model(&rec, &m, seed, &plan, &format!("flip at byte {i}"))?;
    }

    // 4. Snapshot reads across the config riders.
    let snap = st.snapshot();
    let mut oracle_plan = plan.clone();
    oracle_plan.rows = model
        .ros
        .iter()
        .cloned()
        .chain(model.wos.iter().cloned())
        .collect();
    let want = oracle::expected(&oracle_plan);
    for threads in thread_counts(&plan) {
        for fast in [false, true] {
            for cache in [None, Some(plan.cache)] {
                let what = format!("{threads} threads, fast={fast}, cache={}", cache.is_some());
                let got = catching(|| run_snapshot_query(&plan, &snap, threads, fast, cache))
                    .map_err(|p| {
                        format!(
                            "seed {seed}: snapshot query PANIC ({what}): {p}\n  case: {}",
                            plan.describe()
                        )
                    })?
                    .map_err(|e| {
                        format!(
                            "seed {seed}: snapshot query failed ({what}): {e:?}\n  case: {}",
                            plan.describe()
                        )
                    })?;
                if got.rows != want {
                    return Err(format!(
                        "seed {seed}: snapshot MISMATCH ({what}): engine {} rows, oracle {} \
                         rows\n  case: {}\n  engine: {:?}\n  oracle: {:?}",
                        got.rows.len(),
                        want.len(),
                        plan.describe(),
                        got.rows,
                        want,
                    ));
                }
                if !snap.tail.is_empty() && got.parallel.is_some() {
                    return Err(format!(
                        "seed {seed}: a query with a staged tail took the parallel path \
                         ({what})\n  case: {}",
                        plan.describe()
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A slice of the seed space stays green in-tree so `cargo test` keeps
    /// exercising the fuzzer end to end; CI and local runs sweep far more.
    #[test]
    fn smoke_oracle_agreement() {
        for seed in 0..60 {
            run_case(seed).unwrap();
        }
    }

    #[test]
    fn smoke_faults_fail_closed() {
        for seed in 0..60 {
            run_fault_case(seed).unwrap();
        }
    }

    #[test]
    fn smoke_recovery_repairs_and_degrades() {
        for seed in 0..60 {
            run_recovery_case(seed).unwrap();
        }
    }

    #[test]
    fn smoke_cache_modes_are_transparent() {
        for seed in 0..60 {
            run_cache_case(seed).unwrap();
        }
    }

    #[test]
    fn smoke_concurrent_matches_solo() {
        for seed in 0..60 {
            run_concurrent_case(seed).unwrap();
        }
    }

    #[test]
    fn smoke_ingest_recovers_and_reads() {
        for seed in 0..60 {
            run_ingest_case(seed).unwrap();
        }
    }

    #[test]
    fn ingest_schedules_cover_the_design_space() {
        // Over a small window the drawn schedules must hit the shapes the
        // protocol distinguishes: auto-merge specs, multi-epoch histories,
        // a log ending in an uncommitted begin, and inserts landing behind
        // a frozen prefix — otherwise the ingest sweep's claim is hollow.
        let mut auto = false;
        let mut multi_epoch = false;
        let mut uncommitted_tail = false;
        let mut sorted_key = false;
        let mut unsorted = false;
        for seed in 0..200 {
            let (plan, sort_by, spec, mut rng) = ingest_plan(seed);
            if plan.rows.is_empty() {
                continue;
            }
            auto |= spec.auto_merge_rows > 0;
            sorted_key |= sort_by.is_some();
            unsorted |= sort_by.is_none();
            let base = Arc::new(build_table(&plan).unwrap());
            let (st, ops, model) =
                drive_ingest(seed, &plan, base, sort_by, spec, &mut rng).unwrap();
            multi_epoch |= model.epoch >= 2;
            uncommitted_tail |= matches!(ops.last(), Some(IngestOp::MergeBegin))
                || (st.wos_len() > 0 && model.epoch > 0);
        }
        assert!(auto, "no schedule drew an auto-merge spec");
        assert!(multi_epoch, "no schedule committed two merges");
        assert!(uncommitted_tail, "no schedule left staged rows behind");
        assert!(sorted_key && unsorted, "sort-key draw never varied");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen::generate(42);
        let b = gen::generate(42);
        assert_eq!(a.describe(), b.describe());
        assert_eq!(a.rows, b.rows);
        assert_eq!(oracle::expected(&a), oracle::expected(&b));
    }

    #[test]
    fn seeds_cover_the_design_space() {
        // The generator should hit every storage kind, several codecs, all
        // four layouts, and both empty and multi-page tables within a small
        // window — otherwise the fuzzer's coverage claim is hollow.
        use std::collections::HashSet;
        let mut storages = HashSet::new();
        let mut layouts = HashSet::new();
        let mut codecs = HashSet::new();
        let mut empty = false;
        let mut large = false;
        let mut cache_frames = HashSet::new();
        for seed in 0..400 {
            let p = gen::generate(seed);
            storages.insert(format!("{:?}", p.storage));
            layouts.insert(format!("{:?}", p.layout));
            for c in &p.comps {
                codecs.insert(format!("{:?}", c.codec.kind()));
            }
            empty |= p.rows.is_empty();
            large |= p.rows.len() > 300;
            cache_frames.insert(p.cache.frames);
        }
        assert_eq!(storages.len(), 3, "storage kinds: {storages:?}");
        assert_eq!(layouts.len(), 4, "layouts: {layouts:?}");
        // All ten codec kinds (incl. the RLE/PFOR family) must appear.
        assert!(codecs.len() >= 10, "codecs: {codecs:?}");
        assert!(empty && large);
        // Cache draws must hit the degenerate geometries: disabled-size
        // zero, a single frame, and larger than any generated table.
        for frames in [0usize, 1, 1 << 16] {
            assert!(
                cache_frames.contains(&frames),
                "cache sizes: {cache_frames:?}"
            );
        }
    }
}
