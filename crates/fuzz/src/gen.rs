//! Deterministic case generation: one seed expands to one complete, valid
//! case — schema, data, physical design, and a query plan.
//!
//! Everything is drawn from a single [`SplitMix64`] stream, so a case is
//! reproducible from its seed alone. The generator only has to stay inside
//! the engine's *documented* validity envelope (codec domains, projected
//! group columns, sorted aggregation over sorted keys); within that envelope
//! every combination is fair game.

use std::sync::Arc;

use rodb_compress::{bits_for, Codec, ColumnCompression, Dictionary};
use rodb_engine::{AggSpec, CmpOp, Predicate, ScanLayout};
use rodb_types::{CacheSpec, Column, DataType, Schema, SplitMix64, Value};

/// How the table's row representation is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// Plain slotted row pages + uncompressed column files.
    Plain,
    /// PAX row pages + uncompressed column files.
    Pax,
    /// Packed row pages + per-column codecs on both representations.
    Compressed,
}

/// A fully materialized fuzz case.
#[derive(Debug, Clone)]
pub struct CasePlan {
    pub seed: u64,
    pub schema: Arc<Schema>,
    /// Row-major data; text values are pre-padded to the declared width.
    pub rows: Vec<Vec<Value>>,
    pub page_size: usize,
    pub storage: StorageKind,
    pub comps: Vec<ColumnCompression>,
    pub layout: ScanLayout,
    /// Base-table column indices, no duplicates.
    pub projection: Vec<usize>,
    pub predicates: Vec<Predicate>,
    /// Base-table index of the group column (always projected).
    pub group_by: Option<usize>,
    /// Aggregates over *projection positions*.
    pub aggs: Vec<AggSpec>,
    pub sorted_agg: bool,
    pub threads: usize,
    /// Vectorized scan fast path (block decode + code-space predicates +
    /// zone maps). Healthy-mode runs sweep both settings regardless; this
    /// drawn value decides what fault-mode runs use.
    pub scan_fast_path: bool,
    /// Page-cache geometry for cache-mode runs ([`crate::run_cache_case`]
    /// sweeps this against cache-off). Healthy/fault/recovery modes ignore
    /// it.
    pub cache: CacheSpec,
    /// Per-column distribution tag, for failure reports.
    pub dist_tags: Vec<&'static str>,
}

impl CasePlan {
    /// One-line human summary for failure reports.
    pub fn describe(&self) -> String {
        let codecs: Vec<String> = self
            .comps
            .iter()
            .map(|c| format!("{:?}", c.codec.kind()))
            .collect();
        format!(
            "{} cols {:?} x {} rows, page {}, {:?}, codecs [{}], layout {:?}, proj {:?}, \
             {} preds, group {:?}, {} aggs{}, {} threads{}, cache {}f/k{}{}",
            self.schema.len(),
            self.dist_tags,
            self.rows.len(),
            self.page_size,
            self.storage,
            codecs.join(","),
            self.layout,
            self.projection,
            self.predicates.len(),
            self.group_by,
            self.aggs.len(),
            if self.sorted_agg { " (sorted)" } else { "" },
            self.threads,
            if self.scan_fast_path {
                ", fast-path"
            } else {
                ""
            },
            self.cache.frames,
            self.cache.k,
            if self.cache.prefetch { "+pf" } else { "" },
        )
    }
}

/// Expand `seed` into a case.
pub fn generate(seed: u64) -> CasePlan {
    let mut rng = SplitMix64::new(seed);

    // Schema: 1..=4 columns, mostly ints with some narrow fixed text.
    let ncols = 1 + rng.below(4) as usize;
    let mut cols = Vec::with_capacity(ncols);
    for i in 0..ncols {
        let name = format!("c{i}");
        if rng.below(10) < 7 {
            cols.push(Column::int(name));
        } else {
            cols.push(Column::text(name, 1 + rng.below(8) as usize));
        }
    }
    let schema = Arc::new(Schema::new(cols).expect("generated schema is valid"));

    // Row count: biased toward small tables (edge cases) with a long tail
    // that spans several pages per file.
    let nrows = match rng.below(100) {
        0..=4 => 0,
        5..=9 => 1,
        10..=39 => 2 + rng.below(19) as usize,
        40..=79 => 21 + rng.below(280) as usize,
        _ => 301 + rng.below(1200) as usize,
    };
    let page_size = if rng.bool() { 1024 } else { 4096 };

    // Column-wise data with a distribution per column.
    let mut coldata: Vec<Vec<Value>> = Vec::with_capacity(ncols);
    let mut dist_tags: Vec<&'static str> = Vec::with_capacity(ncols);
    let mut text_content_len: Vec<usize> = Vec::with_capacity(ncols);
    for c in 0..ncols {
        match schema.dtype(c) {
            DataType::Int => {
                let (tag, vals): (&'static str, Vec<i32>) = match rng.below(4) {
                    0 => {
                        let lo = rng.range_i32(-1000, 1000);
                        let width = 1 + rng.below(2000);
                        (
                            "uniform",
                            (0..nrows).map(|_| lo + rng.below(width) as i32).collect(),
                        )
                    }
                    1 => {
                        // Skewed: the 4th power of a uniform draw piles mass
                        // near the low end, a cheap zipf-alike.
                        let lo = rng.range_i32(-1000, 1000);
                        let width = 1 + rng.below(2000);
                        (
                            "zipf",
                            (0..nrows)
                                .map(|_| {
                                    let f = rng.f64();
                                    lo + (f * f * f * f * width as f64) as i32
                                })
                                .collect(),
                        )
                    }
                    2 => {
                        // Non-decreasing: qualifies for FOR-delta and sorted
                        // aggregation.
                        let mut v = rng.range_i32(-100, 100);
                        (
                            "sorted",
                            (0..nrows)
                                .map(|_| {
                                    let cur = v;
                                    v += rng.below(10) as i32;
                                    cur
                                })
                                .collect(),
                        )
                    }
                    _ => {
                        let k = 1 + rng.below(8) as usize;
                        let pool: Vec<i32> = (0..k).map(|_| rng.range_i32(-50, 50)).collect();
                        (
                            "lowcard",
                            (0..nrows)
                                .map(|_| pool[rng.below(k as u64) as usize])
                                .collect(),
                        )
                    }
                };
                dist_tags.push(tag);
                text_content_len.push(0);
                coldata.push(vals.into_iter().map(Value::Int).collect());
            }
            DataType::Text(w) => {
                let (tag, pool_size) = if rng.bool() {
                    ("text-uniform", 8 + rng.below(12) as usize)
                } else {
                    ("text-lowcard", 1 + rng.below(4) as usize)
                };
                let pool: Vec<Vec<u8>> = (0..pool_size)
                    .map(|_| {
                        let len = rng.below(w as u64 + 1) as usize;
                        (0..len).map(|_| b'a' + rng.below(26) as u8).collect()
                    })
                    .collect();
                dist_tags.push(tag);
                let mut max_content = 0usize;
                let vals: Vec<Value> = (0..nrows)
                    .map(|_| {
                        let s = &pool[rng.below(pool.len() as u64) as usize];
                        max_content = max_content.max(s.len());
                        let mut padded = s.clone();
                        padded.resize(w, 0);
                        Value::Text(padded.into_boxed_slice())
                    })
                    .collect();
                text_content_len.push(max_content);
                coldata.push(vals);
            }
            DataType::Long => unreachable!("generator never emits Long columns"),
        }
    }

    // Physical design: codecs are chosen *after* the data so domain-limited
    // codecs (BitPack needs min >= 0, FOR-delta needs a sorted column) only
    // appear where valid.
    let storage = match rng.below(3) {
        0 => StorageKind::Plain,
        1 => StorageKind::Pax,
        _ => StorageKind::Compressed,
    };
    let comps: Vec<ColumnCompression> = if storage == StorageKind::Compressed {
        (0..ncols)
            .map(|c| pick_codec(&mut rng, schema.dtype(c), &coldata[c], text_content_len[c]))
            .collect()
    } else {
        vec![ColumnCompression::none(); ncols]
    };

    // Query: projection is a shuffled prefix of the columns (no duplicates).
    let mut idx: Vec<usize> = (0..ncols).collect();
    for i in (1..ncols).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        idx.swap(i, j);
    }
    let nproj = 1 + rng.below(ncols as u64) as usize;
    let projection = idx[..nproj].to_vec();

    // Predicates may reference unprojected columns — the engine supports
    // that, the fuzzer must too.
    const OPS: [CmpOp; 6] = [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Ge,
        CmpOp::Gt,
    ];
    let npred = rng.below(4) as usize;
    let mut predicates = Vec::with_capacity(npred);
    for _ in 0..npred {
        let c = rng.below(ncols as u64) as usize;
        let op = OPS[rng.below(6) as usize];
        // Literals mostly sampled from the data (selective but non-empty
        // results) with a side of out-of-range values.
        let sample = nrows > 0 && rng.below(10) < 6;
        let lit = match schema.dtype(c) {
            DataType::Int => {
                if sample {
                    coldata[c][rng.below(nrows as u64) as usize].clone()
                } else {
                    Value::Int(rng.range_i32(-1100, 1100))
                }
            }
            DataType::Text(w) => {
                if sample {
                    coldata[c][rng.below(nrows as u64) as usize].clone()
                } else {
                    let len = rng.below(w as u64 + 1) as usize;
                    let bytes: Vec<u8> = (0..len).map(|_| b'a' + rng.below(26) as u8).collect();
                    Value::Text(bytes.into_boxed_slice())
                }
            }
            DataType::Long => unreachable!(),
        };
        predicates.push(Predicate::new(c, op, lit));
    }

    // Aggregation: grouped or scalar, 1..=3 functions over projected int
    // positions (COUNT works regardless of types).
    let mut group_by = None;
    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut sorted_agg = false;
    if rng.below(100) < 45 {
        if rng.below(10) < 7 {
            group_by = Some(projection[rng.below(nproj as u64) as usize]);
        }
        let int_positions: Vec<usize> = projection
            .iter()
            .enumerate()
            .filter(|&(_, &c)| schema.dtype(c) == DataType::Int)
            .map(|(p, _)| p)
            .collect();
        let naggs = 1 + rng.below(3) as usize;
        for _ in 0..naggs {
            let choice = if int_positions.is_empty() {
                0
            } else {
                rng.below(5)
            };
            let spec = if choice == 0 {
                AggSpec::count()
            } else {
                let p = int_positions[rng.below(int_positions.len() as u64) as usize];
                match choice {
                    1 => AggSpec::sum(p),
                    2 => AggSpec::min(p),
                    3 => AggSpec::max(p),
                    _ => AggSpec::avg(p),
                }
            };
            aggs.push(spec);
        }
        // Sort-based aggregation requires input grouped on the key; only a
        // globally non-decreasing column guarantees that.
        if let Some(g) = group_by {
            if dist_tags[g] == "sorted" && rng.bool() {
                sorted_agg = true;
            }
        }
    }

    let layout = match rng.below(100) {
        0..=34 => ScanLayout::Row,
        35..=69 => ScanLayout::Column,
        70..=84 => ScanLayout::ColumnSlow,
        _ => ScanLayout::ColumnSingleIterator,
    };
    let threads = [1, 1, 2, 3, 4, 7][rng.below(6) as usize];
    let scan_fast_path = rng.bool();

    // Cache geometry is drawn after every plan-shaping decision, so seeds
    // generated before the cache tier existed keep their exact plans. The
    // size menu deliberately includes the degenerate geometries: 0 frames
    // (enabled but misses everything), a single frame, and far larger than
    // any generated table.
    let cache = CacheSpec {
        frames: [0usize, 1, 2, 4, 8, 64, 1 << 16][rng.below(7) as usize],
        k: 1 + rng.below(4) as usize,
        prefetch: rng.bool(),
    };

    // Transpose to row-major for the loader and the oracle.
    let rows: Vec<Vec<Value>> = (0..nrows)
        .map(|r| (0..ncols).map(|c| coldata[c][r].clone()).collect())
        .collect();

    CasePlan {
        seed,
        schema,
        rows,
        page_size,
        storage,
        comps,
        layout,
        projection,
        predicates,
        group_by,
        aggs,
        sorted_agg,
        threads,
        scan_fast_path,
        cache,
        dist_tags,
    }
}

/// Pick a codec valid for this column's data. `max_content` is the longest
/// trimmed text content actually generated (TextPack's byte budget).
fn pick_codec(
    rng: &mut SplitMix64,
    dtype: DataType,
    vals: &[Value],
    max_content: usize,
) -> ColumnCompression {
    match dtype {
        DataType::Int => {
            let ints: Vec<i64> = vals
                .iter()
                .map(|v| match v {
                    Value::Int(i) => *i as i64,
                    _ => unreachable!(),
                })
                .collect();
            let min = ints.iter().copied().min().unwrap_or(0);
            let max = ints.iter().copied().max().unwrap_or(0);
            let nondecreasing = ints.windows(2).all(|w| w[0] <= w[1]);
            // Candidate list, then one uniform draw: None, FOR, Dict, RLE,
            // PFOR, Dict→FOR and RLE-on-codes always apply to ints; BitPack
            // needs non-negative values; FOR-delta needs a non-decreasing
            // column.
            let mut cands = vec![0u8, 2, 4, 5, 6, 7, 8];
            if min >= 0 {
                cands.push(1);
            }
            if nondecreasing {
                cands.push(3);
            }
            match cands[rng.below(cands.len() as u64) as usize] {
                0 => ColumnCompression::none(),
                1 => ColumnCompression::new(
                    Codec::BitPack {
                        bits: bits_for(max as u64),
                    },
                    None,
                )
                .expect("bitpack codec"),
                2 => ColumnCompression::new(
                    Codec::For {
                        bits: bits_for((max - min) as u64),
                    },
                    None,
                )
                .expect("for codec"),
                3 => {
                    let maxd = ints
                        .windows(2)
                        .map(|w| (w[1] - w[0]) as u64)
                        .max()
                        .unwrap_or(0);
                    ColumnCompression::new(
                        Codec::ForDelta {
                            bits: bits_for(maxd),
                        },
                        None,
                    )
                    .expect("fordelta codec")
                }
                4 => dict_comp(dtype, vals),
                5 => ColumnCompression::new(
                    Codec::Rle {
                        value_bits: bits_for((max - min) as u64).max(1),
                        len_bits: 1 + rng.below(6) as u8,
                    },
                    None,
                )
                .expect("rle codec"),
                6 => {
                    // Any width is valid: codes at or above 2^bits become
                    // patched exceptions. Narrow draws exercise the patch
                    // path hard.
                    let full = bits_for((max - min) as u64).max(1);
                    ColumnCompression::new(
                        Codec::Pfor {
                            bits: 1 + rng.below(full as u64) as u8,
                        },
                        None,
                    )
                    .expect("pfor codec")
                }
                7 => {
                    let dict = Dictionary::build(dtype, vals.iter()).expect("dict over own data");
                    let bits = dict.code_bits();
                    ColumnCompression::new(Codec::DictFor { bits }, Some(Arc::new(dict)))
                        .expect("dictfor codec with full-span width")
                }
                _ => {
                    let dict = Dictionary::build(dtype, vals.iter()).expect("dict over own data");
                    let value_bits = dict.code_bits().max(1);
                    ColumnCompression::new(
                        Codec::RleDict {
                            value_bits,
                            len_bits: 1 + rng.below(6) as u8,
                        },
                        Some(Arc::new(dict)),
                    )
                    .expect("rledict codec with its own code width")
                }
            }
        }
        DataType::Text(_) => match rng.below(4) {
            0 => ColumnCompression::none(),
            1 => ColumnCompression::new(
                Codec::TextPack {
                    bytes: max_content.max(1) as u16,
                },
                None,
            )
            .expect("textpack codec"),
            2 => {
                // Dict→FOR applies to text too: codes are ints even when
                // values are not.
                let dict = Dictionary::build(dtype, vals.iter()).expect("dict over own data");
                let bits = dict.code_bits();
                ColumnCompression::new(Codec::DictFor { bits }, Some(Arc::new(dict)))
                    .expect("text dictfor codec")
            }
            _ => dict_comp(dtype, vals),
        },
        DataType::Long => unreachable!(),
    }
}

fn dict_comp(dtype: DataType, vals: &[Value]) -> ColumnCompression {
    let dict = Dictionary::build(dtype, vals.iter()).expect("dictionary over own data");
    let bits = dict.code_bits();
    ColumnCompression::new(Codec::Dict { bits }, Some(Arc::new(dict)))
        .expect("dict codec with its own code width")
}
