//! Model oracle: the expected result of a [`CasePlan`], computed over the
//! plan's in-memory `Vec<Vec<Value>>` rows with none of the engine's scan,
//! page, or codec machinery. The only shared vocabulary is the plan itself
//! (`Predicate`, `AggSpec`); evaluation is reimplemented from the documented
//! semantics:
//!
//! * predicates: integer comparison widened to `i64`; text comparison is
//!   bytewise over the zero-padded stored value vs. the literal padded to
//!   the declared width;
//! * projection returns stored (padded) values;
//! * aggregates accumulate in `i64`, AVG is the truncating `sum / count`;
//! * hash aggregation orders groups by the raw little-endian key bytes,
//!   sorted aggregation preserves run (first-appearance) order;
//! * zero input rows produce zero output rows, grouped or scalar.

use std::collections::HashMap;

use rodb_engine::AggFunc;
use rodb_types::{DataType, Value};

use crate::gen::CasePlan;

/// Expected `QueryResult::rows` for the plan.
pub fn expected(plan: &CasePlan) -> Vec<Vec<Value>> {
    let schema = &plan.schema;
    let surviving: Vec<&Vec<Value>> = plan
        .rows
        .iter()
        .filter(|r| {
            plan.predicates
                .iter()
                .all(|p| holds(&r[p.col], p.op, &p.literal, schema.dtype(p.col)))
        })
        .collect();
    let projected: Vec<Vec<Value>> = surviving
        .iter()
        .map(|r| plan.projection.iter().map(|&c| r[c].clone()).collect())
        .collect();
    if plan.aggs.is_empty() {
        return projected;
    }
    aggregate(plan, &projected)
}

/// Independent predicate evaluation.
fn holds(stored: &Value, op: rodb_engine::CmpOp, literal: &Value, dtype: DataType) -> bool {
    use rodb_engine::CmpOp::*;
    let ord = match dtype {
        DataType::Int | DataType::Long => {
            let a = num(stored);
            let b = num(literal);
            a.cmp(&b)
        }
        DataType::Text(w) => {
            let a = text(stored);
            let mut b = text(literal).to_vec();
            b.resize(w, 0);
            a.cmp(&b[..])
        }
    };
    match op {
        Lt => ord.is_lt(),
        Le => ord.is_le(),
        Eq => ord.is_eq(),
        Ne => ord.is_ne(),
        Ge => ord.is_ge(),
        Gt => ord.is_gt(),
    }
}

fn num(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i as i64,
        Value::Long(l) => *l,
        Value::Text(_) => unreachable!("numeric compare on text"),
    }
}

fn text(v: &Value) -> &[u8] {
    match v {
        Value::Text(b) => b,
        _ => unreachable!("text compare on numeric"),
    }
}

/// Raw stored bytes of a value — the engine's group keys are exactly these.
fn key_bytes(dtype: DataType, v: &Value) -> Vec<u8> {
    match dtype {
        DataType::Int => match v {
            Value::Int(i) => i.to_le_bytes().to_vec(),
            _ => unreachable!(),
        },
        DataType::Long => match v {
            Value::Long(l) => l.to_le_bytes().to_vec(),
            _ => unreachable!(),
        },
        DataType::Text(w) => {
            let mut b = text(v).to_vec();
            b.resize(w, 0);
            b
        }
    }
}

#[derive(Clone)]
struct Acc {
    count: i64,
    sum: i64,
    min: i64,
    max: i64,
}

impl Acc {
    fn new() -> Acc {
        Acc {
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }
    fn update(&mut self, v: i64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
    fn result(&self, f: AggFunc) -> i64 {
        match f {
            AggFunc::Count => self.count,
            AggFunc::Sum => self.sum,
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
            AggFunc::Avg => {
                if self.count == 0 {
                    0
                } else {
                    self.sum / self.count
                }
            }
        }
    }
}

fn aggregate(plan: &CasePlan, projected: &[Vec<Value>]) -> Vec<Vec<Value>> {
    // Group column as a position within the projection (it is always
    // projected — the builder enforces that).
    let gpos = plan.group_by.map(|base| {
        plan.projection
            .iter()
            .position(|&c| c == base)
            .expect("group column is projected")
    });
    let key_dtype = plan.group_by.map(|base| plan.schema.dtype(base));

    // first-seen order, with an index for O(1) lookup
    let mut groups: Vec<(Vec<u8>, Option<Value>, Vec<Acc>)> = Vec::new();
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    for row in projected {
        let (key, gval) = match gpos {
            Some(g) => (
                key_bytes(key_dtype.expect("key dtype"), &row[g]),
                Some(row[g].clone()),
            ),
            None => (Vec::new(), None),
        };
        let gi = match index.get(&key) {
            Some(&i) => i,
            None => {
                groups.push((key.clone(), gval, vec![Acc::new(); plan.aggs.len()]));
                index.insert(key, groups.len() - 1);
                groups.len() - 1
            }
        };
        for (si, spec) in plan.aggs.iter().enumerate() {
            let v = if spec.func == AggFunc::Count {
                0
            } else {
                num(&row[spec.col])
            };
            groups[gi].2[si].update(v);
        }
    }

    // Hash aggregation sorts by key bytes; sorted aggregation keeps run
    // order (identical to first-seen order for a globally sorted key).
    if !plan.sorted_agg {
        groups.sort_by(|a, b| a.0.cmp(&b.0));
    }

    groups
        .into_iter()
        .map(|(_, gval, accs)| {
            let mut out = Vec::with_capacity(plan.aggs.len() + 1);
            if let Some(v) = gval {
                out.push(v);
            }
            for (spec, acc) in plan.aggs.iter().zip(&accs) {
                out.push(Value::Long(acc.result(spec.func)));
            }
            out
        })
        .collect()
}
