//! TPC-H-derived workload of the paper (§3.1).
//!
//! Seeded generators for the modified LINEITEM (150-byte wide tuple) and
//! ORDERS (32-byte narrow tuple) tables, the Figure 5 compressed variants
//! (LINEITEM-Z, ORDERS-Z), and loaders producing row and/or column
//! representations. The selectivity-control attributes are exact
//! permutations of their domains so the §4 experiments hit their advertised
//! selectivities precisely.

pub mod gen;
pub mod load;
pub mod schema;

pub use gen::{orderdate_threshold, partkey_threshold, LineitemGen, OrdersGen};
pub use load::{load_lineitem, load_orders, load_rows, load_rows_pax, Variant};
pub use schema::{
    compressed_bits, lineitem_schema, lineitem_z_compression, orders_schema, orders_z_compression,
    uncompressed,
};
