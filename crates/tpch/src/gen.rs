//! Deterministic, seeded row generators for the paper's two tables.
//!
//! The selectivity-control attributes (L_PARTKEY for LINEITEM, O_ORDERDATE
//! for ORDERS — attribute 1 of each table, which every §4 query filters on)
//! are generated as an exact multiplicative permutation of their domain, so a
//! `< threshold` predicate yields a *precise* selectivity instead of a
//! binomial approximation. All other attributes come from a SplitMix64 hash
//! of `(seed, row, column)`, so any row is reproducible in isolation.

use rodb_types::Value;

use crate::schema::domains::*;

/// Multiplier for the selectivity permutation (odd, coprime with both the
/// PARTKEY and DATE_DAYS domains).
const PERM_K: u64 = 2_654_435_761;

/// SplitMix64 — small, fast, well-distributed (Steele et al., OOPSLA'14).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn field_hash(seed: u64, row: u64, col: u64) -> u64 {
    splitmix64(seed ^ splitmix64(row.wrapping_mul(31).wrapping_add(col)))
}

fn uniform(seed: u64, row: u64, col: u64, bound: i32) -> i32 {
    (field_hash(seed, row, col) % bound as u64) as i32
}

fn pick<'a>(seed: u64, row: u64, col: u64, opts: &[&'a str]) -> &'a str {
    opts[(field_hash(seed, row, col) % opts.len() as u64) as usize]
}

/// The exact-selectivity value for row `i` over `domain`.
#[inline]
pub fn perm_value(i: u64, domain: i32) -> i32 {
    ((i.wrapping_mul(PERM_K)) % domain as u64) as i32
}

/// Predicate threshold on L_PARTKEY for a target selectivity (0..=1).
pub fn partkey_threshold(selectivity: f64) -> i32 {
    (selectivity * PARTKEY as f64).round() as i32
}

/// Predicate threshold on O_ORDERDATE for a target selectivity (0..=1).
pub fn orderdate_threshold(selectivity: f64) -> i32 {
    (selectivity * DATE_DAYS as f64).round() as i32
}

/// Streaming LINEITEM generator (Figure 5 left, 150-byte rows).
pub struct LineitemGen {
    seed: u64,
    row: u64,
    rows: u64,
    orderkey: i32,
    lines_left: i32,
    linenumber: i32,
}

impl LineitemGen {
    pub fn new(rows: u64, seed: u64) -> LineitemGen {
        LineitemGen {
            seed,
            row: 0,
            rows,
            orderkey: 0,
            lines_left: 0,
            linenumber: 0,
        }
    }
}

impl Iterator for LineitemGen {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        if self.row >= self.rows {
            return None;
        }
        let i = self.row;
        let s = self.seed;
        if self.lines_left == 0 {
            // New order with 1–7 lines (TPC-H averages 4); the order key
            // advances by exactly 1, keeping FOR-delta deltas in {0, 1}.
            self.orderkey += 1;
            self.lines_left = 1 + uniform(s, i, 100, MAX_LINENUMBER);
            self.linenumber = 0;
        }
        self.lines_left -= 1;
        self.linenumber += 1;

        let shipdate = uniform(s, i, 14, DATE_DAYS - 100);
        let row = vec![
            Value::Int(perm_value(i, PARTKEY)),              // 1 l_partkey
            Value::Int(self.orderkey),                       // 2 l_orderkey
            Value::Int(uniform(s, i, 3, SUPPKEY)),           // 3 l_suppkey
            Value::Int(self.linenumber),                     // 4 l_linenumber
            Value::Int(1 + uniform(s, i, 5, MAX_QUANTITY)),  // 5 l_quantity
            Value::Int(1 + uniform(s, i, 6, MAX_PRICE)),     // 6 l_extendedprice
            Value::text(pick(s, i, 7, &RETURNFLAGS)),        // 7 l_returnflag
            Value::text(pick(s, i, 8, &LINESTATUS)),         // 8 l_linestatus
            Value::text(pick(s, i, 9, &SHIPINSTRUCT)),       // 9 l_shipinstruct
            Value::text(pick(s, i, 10, &SHIPMODES)),         // 10 l_shipmode
            Value::text(&comment(s, i)),                     // 11 l_comment
            Value::Int(uniform(s, i, 12, MAX_DISCOUNT + 1)), // 12 l_discount
            Value::Int(uniform(s, i, 13, MAX_TAX + 1)),      // 13 l_tax
            Value::Int(shipdate),                            // 14 l_shipdate
            Value::Int(shipdate + uniform(s, i, 15, 60)),    // 15 l_commitdate
            Value::Int(shipdate + uniform(s, i, 16, 30)),    // 16 l_receiptdate
        ];
        self.row += 1;
        Some(row)
    }
}

/// Two-word comment; content always fits the 28-byte TextPack of Figure 5.
fn comment(seed: u64, row: u64) -> String {
    let a = pick(seed, row, 11, &COMMENT_WORDS);
    let b = pick(seed, row, 17, &COMMENT_WORDS);
    let c = format!("{a} {b}");
    debug_assert!(c.len() <= 28);
    c
}

/// Streaming ORDERS generator (Figure 5 left, 32-byte rows).
pub struct OrdersGen {
    seed: u64,
    row: u64,
    rows: u64,
}

impl OrdersGen {
    pub fn new(rows: u64, seed: u64) -> OrdersGen {
        OrdersGen { seed, row: 0, rows }
    }
}

impl Iterator for OrdersGen {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        if self.row >= self.rows {
            return None;
        }
        let i = self.row;
        let s = self.seed;
        let row = vec![
            Value::Int(perm_value(i, DATE_DAYS)),        // 1 o_orderdate
            Value::Int(i as i32 + 1),                    // 2 o_orderkey (sorted)
            Value::Int(uniform(s, i, 3, CUSTKEY)),       // 3 o_custkey
            Value::text(pick(s, i, 4, &ORDERSTATUS)),    // 4 o_orderstatus
            Value::text(pick(s, i, 5, &ORDERPRIORITY)),  // 5 o_orderpriority
            Value::Int(1 + uniform(s, i, 6, MAX_PRICE)), // 6 o_totalprice
            Value::Int(0),                               // 7 o_shippriority
        ];
        self.row += 1;
        Some(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{lineitem_schema, orders_schema};

    #[test]
    fn generators_are_deterministic() {
        let a: Vec<_> = LineitemGen::new(100, 42).collect();
        let b: Vec<_> = LineitemGen::new(100, 42).collect();
        let c: Vec<_> = LineitemGen::new(100, 43).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let oa: Vec<_> = OrdersGen::new(100, 42).collect();
        let ob: Vec<_> = OrdersGen::new(100, 42).collect();
        assert_eq!(oa, ob);
    }

    #[test]
    fn rows_fit_their_schemas() {
        let ls = lineitem_schema();
        for row in LineitemGen::new(500, 7) {
            assert_eq!(row.len(), ls.len());
            for (v, c) in row.iter().zip(ls.columns()) {
                assert!(v.fits(c.dtype), "{v} !fits {}", c.dtype);
            }
        }
        let os = orders_schema();
        for row in OrdersGen::new(500, 7) {
            assert_eq!(row.len(), os.len());
            for (v, c) in row.iter().zip(os.columns()) {
                assert!(v.fits(c.dtype), "{v} !fits {}", c.dtype);
            }
        }
    }

    #[test]
    fn selectivity_is_exact_on_whole_domains() {
        // Over n = DATE_DAYS rows, the permutation hits each date once.
        let n = DATE_DAYS as u64;
        let t = orderdate_threshold(0.10);
        let hits = (0..n).filter(|&i| perm_value(i, DATE_DAYS) < t).count();
        assert_eq!(hits as i32, t);

        // Over any n, error is bounded by one permutation cycle.
        let n = 100_000u64;
        let t = partkey_threshold(0.10);
        let hits = (0..n).filter(|&i| perm_value(i, PARTKEY) < t).count() as f64;
        let expect = n as f64 * 0.10;
        assert!(
            (hits - expect).abs() / expect < 0.05,
            "hits {hits} vs {expect}"
        );
    }

    #[test]
    fn orderkeys_are_sorted_with_small_deltas() {
        let mut prev = 0i32;
        for row in LineitemGen::new(2000, 9) {
            let k = row[1].as_int().unwrap();
            assert!(k >= prev);
            assert!(k - prev <= 1);
            prev = k;
        }
        // ORDERS keys are strictly sequential.
        let mut prev = 0i32;
        for row in OrdersGen::new(2000, 9) {
            let k = row[1].as_int().unwrap();
            assert_eq!(k, prev + 1);
            prev = k;
        }
    }

    #[test]
    fn lineitem_dates_fit_16_bits_and_orders_dates_14_bits() {
        for row in LineitemGen::new(5000, 3) {
            for col in [13, 14, 15] {
                let d = row[col].as_int().unwrap();
                assert!((0..65536).contains(&d));
            }
        }
        for row in OrdersGen::new(5000, 3) {
            let d = row[0].as_int().unwrap();
            assert!((0..16384).contains(&d));
        }
    }

    #[test]
    fn lines_per_order_average_near_four() {
        let rows: Vec<_> = LineitemGen::new(40_000, 11).collect();
        let orders = rows.last().unwrap()[1].as_int().unwrap();
        let avg = rows.len() as f64 / orders as f64;
        assert!((3.0..5.0).contains(&avg), "avg lines/order {avg}");
    }

    #[test]
    fn comments_fit_textpack() {
        for row in LineitemGen::new(1000, 5) {
            let c = row[10].as_text().unwrap();
            assert!(c.len() <= 28);
        }
    }
}
