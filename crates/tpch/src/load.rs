//! Loading generated rows into read-optimized tables.

use std::sync::Arc;

use rodb_compress::ColumnCompression;
use rodb_storage::{BuildLayouts, Table, TableBuilder};
use rodb_types::{Result, Schema, Value};

use crate::gen::{LineitemGen, OrdersGen};
use crate::schema::{
    lineitem_schema, lineitem_z_compression, orders_schema, orders_z_compression, uncompressed,
};

/// Which physical variant of a table to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Uncompressed attributes (the paper's LINEITEM / ORDERS).
    Plain,
    /// Figure 5 compressed attributes (LINEITEM-Z / ORDERS-Z).
    Compressed,
    /// Uncompressed attributes with PAX row pages (§6's alternative page
    /// layout: row-store I/O, column-store cache locality).
    Pax,
}

/// Load an arbitrary generated row stream into a table.
pub fn load_rows(
    name: &str,
    schema: Arc<Schema>,
    comps: Vec<ColumnCompression>,
    rows: impl Iterator<Item = Vec<Value>>,
    page_size: usize,
    layouts: BuildLayouts,
) -> Result<Table> {
    let mut b = TableBuilder::with_compression(name, schema, page_size, layouts, comps)?;
    for row in rows {
        b.push_row(&row)?;
    }
    b.finish()
}

/// Load a row stream into a table whose row representation uses PAX pages.
pub fn load_rows_pax(
    name: &str,
    schema: Arc<Schema>,
    rows: impl Iterator<Item = Vec<Value>>,
    page_size: usize,
    layouts: BuildLayouts,
) -> Result<Table> {
    let mut b = TableBuilder::new_pax(name, schema, page_size, layouts)?;
    for row in rows {
        b.push_row(&row)?;
    }
    b.finish()
}

/// Load LINEITEM (or LINEITEM-Z) with `rows` rows.
pub fn load_lineitem(
    rows: u64,
    seed: u64,
    page_size: usize,
    layouts: BuildLayouts,
    variant: Variant,
) -> Result<Table> {
    let schema = lineitem_schema();
    let (name, comps) = match variant {
        Variant::Plain => ("lineitem", uncompressed(&schema)),
        Variant::Compressed => ("lineitem_z", lineitem_z_compression()?),
        Variant::Pax => {
            return load_rows_pax(
                "lineitem_pax",
                schema,
                LineitemGen::new(rows, seed),
                page_size,
                layouts,
            )
        }
    };
    load_rows(
        name,
        schema,
        comps,
        LineitemGen::new(rows, seed),
        page_size,
        layouts,
    )
}

/// Load ORDERS (or ORDERS-Z) with `rows` rows.
pub fn load_orders(
    rows: u64,
    seed: u64,
    page_size: usize,
    layouts: BuildLayouts,
    variant: Variant,
) -> Result<Table> {
    let schema = orders_schema();
    let (name, comps) = match variant {
        Variant::Plain => ("orders", uncompressed(&schema)),
        Variant::Compressed => ("orders_z", orders_z_compression()?),
        Variant::Pax => {
            return load_rows_pax(
                "orders_pax",
                schema,
                OrdersGen::new(rows, seed),
                page_size,
                layouts,
            )
        }
    };
    load_rows(
        name,
        schema,
        comps,
        OrdersGen::new(rows, seed),
        page_size,
        layouts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodb_storage::Layout;

    #[test]
    fn lineitem_loads_and_roundtrips_both_variants() {
        let plain = load_lineitem(2000, 1, 4096, BuildLayouts::both(), Variant::Plain).unwrap();
        assert_eq!(plain.row_count, 2000);
        let via_row = plain.read_all(Layout::Row).unwrap();
        let via_col = plain.read_all(Layout::Column).unwrap();
        assert_eq!(via_row, via_col);

        let z = load_lineitem(
            2000,
            1,
            4096,
            BuildLayouts::column_only(),
            Variant::Compressed,
        )
        .unwrap();
        let via_z = z.read_all(Layout::Column).unwrap();
        assert_eq!(via_row, via_z, "compression must be lossless");
    }

    #[test]
    fn orders_loads_and_roundtrips_both_variants() {
        let plain = load_orders(3000, 1, 4096, BuildLayouts::both(), Variant::Plain).unwrap();
        let via_row = plain.read_all(Layout::Row).unwrap();
        let z = load_orders(3000, 1, 4096, BuildLayouts::both(), Variant::Compressed).unwrap();
        assert_eq!(via_row, z.read_all(Layout::Column).unwrap());
        assert_eq!(via_row, z.read_all(Layout::Row).unwrap());
    }

    #[test]
    fn on_disk_sizes_extrapolate_to_paper_scale() {
        // §3.1: LINEITEM at 60 M rows is "9.5 GB on disk"; ORDERS "1.9 GB".
        let n = 50_000u64;
        let li = load_lineitem(n, 1, 4096, BuildLayouts::row_only(), Variant::Plain).unwrap();
        let bytes = li.row_storage().unwrap().byte_len() as f64;
        let at_60m = bytes * (60.0e6 / n as f64) / 1.0e9;
        assert!((9.2..9.7).contains(&at_60m), "LINEITEM {at_60m} GB");

        let o = load_orders(n, 1, 4096, BuildLayouts::row_only(), Variant::Plain).unwrap();
        let bytes = o.row_storage().unwrap().byte_len() as f64;
        let at_60m = bytes * (60.0e6 / n as f64) / 1.0e9;
        assert!((1.85..2.0).contains(&at_60m), "ORDERS {at_60m} GB");
    }

    #[test]
    fn compression_shrinks_orders_by_figure5_ratio() {
        let n = 20_000u64;
        let plain = load_orders(n, 1, 4096, BuildLayouts::column_only(), Variant::Plain).unwrap();
        let z = load_orders(n, 1, 4096, BuildLayouts::column_only(), Variant::Compressed).unwrap();
        let pb = plain.col_storage().unwrap().byte_len() as f64;
        let zb = z.col_storage().unwrap().byte_len() as f64;
        // 32 bytes → 11.5 bytes of payload: ~2.8× smaller.
        let ratio = pb / zb;
        assert!((2.3..3.2).contains(&ratio), "ratio {ratio}");
    }
}
