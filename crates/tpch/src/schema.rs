//! The paper's modified TPC-H schemas (§3.1, Figure 5).
//!
//! LINEITEM is fixed at a 150-byte "wide" tuple (16 attributes; decimals and
//! dates stored as 4-byte ints, L_COMMENT as fixed 69-byte text) and ORDERS
//! at a 32-byte "narrow" tuple (7 attributes; two text fields dropped, one
//! resized). The compressed variants LINEITEM-Z and ORDERS-Z use exactly the
//! per-attribute codecs of Figure 5.

use std::sync::Arc;

use rodb_compress::{Codec, ColumnCompression, Dictionary};
use rodb_types::{Column, DataType, Result, Schema, Value};

/// Value domains the generator draws from (sized to honour Figure 5's code
/// widths).
pub mod domains {
    /// L_PARTKEY ∈ [0, PARTKEY): the selectivity-control attribute of
    /// LINEITEM queries.
    pub const PARTKEY: i32 = 200_000;
    /// L_SUPPKEY ∈ [0, SUPPKEY).
    pub const SUPPKEY: i32 = 10_000;
    /// Line numbers ∈ [1, 7] ("pack, 3 bits").
    pub const MAX_LINENUMBER: i32 = 7;
    /// Quantities ∈ [1, 50] ("pack, 6 bits").
    pub const MAX_QUANTITY: i32 = 50;
    /// Dates as days since 1992-01-01, ∈ [0, DATE_DAYS) ("pack, 2 bytes" /
    /// "pack, 14 bits"): the O_ORDERDATE selectivity-control attribute.
    pub const DATE_DAYS: i32 = 2_400;
    /// O_CUSTKEY ∈ [0, CUSTKEY).
    pub const CUSTKEY: i32 = 150_000;
    /// Price attributes ∈ [1, MAX_PRICE].
    pub const MAX_PRICE: i32 = 99_999_999;

    pub const RETURNFLAGS: [&str; 3] = ["A", "N", "R"];
    pub const LINESTATUS: [&str; 2] = ["O", "F"];
    pub const SHIPINSTRUCT: [&str; 4] = [
        "DELIVER IN PERSON",
        "COLLECT COD",
        "NONE",
        "TAKE BACK RETURN",
    ];
    pub const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
    /// Discounts 0..=10 percent (11 distinct, "dict, 4 bits").
    pub const MAX_DISCOUNT: i32 = 10;
    /// Taxes 0..=8 percent (9 distinct, "dict, 4 bits").
    pub const MAX_TAX: i32 = 8;
    pub const ORDERSTATUS: [&str; 3] = ["F", "O", "P"];
    pub const ORDERPRIORITY: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"];
    /// Comment vocabulary; any two words + a space fit the 28-byte pack.
    pub const COMMENT_WORDS: [&str; 16] = [
        "carefully",
        "quickly",
        "furiously",
        "slyly",
        "deposits",
        "requests",
        "packages",
        "accounts",
        "pending",
        "final",
        "ironic",
        "regular",
        "express",
        "special",
        "bold",
        "even",
    ];
}

/// The 16-attribute, 150-byte LINEITEM schema in the paper's Figure 5 order.
pub fn lineitem_schema() -> Arc<Schema> {
    Arc::new(
        Schema::new(vec![
            Column::int("l_partkey"),           // 1
            Column::int("l_orderkey"),          // 2
            Column::int("l_suppkey"),           // 3
            Column::int("l_linenumber"),        // 4
            Column::int("l_quantity"),          // 5
            Column::int("l_extendedprice"),     // 6
            Column::text("l_returnflag", 1),    // 7
            Column::text("l_linestatus", 1),    // 8
            Column::text("l_shipinstruct", 25), // 9
            Column::text("l_shipmode", 10),     // 10
            Column::text("l_comment", 69),      // 11
            Column::int("l_discount"),          // 12
            Column::int("l_tax"),               // 13
            Column::int("l_shipdate"),          // 14
            Column::int("l_commitdate"),        // 15
            Column::int("l_receiptdate"),       // 16
        ])
        .expect("static schema is valid"),
    )
}

/// The 7-attribute, 32-byte ORDERS schema in the paper's Figure 5 order.
pub fn orders_schema() -> Arc<Schema> {
    Arc::new(
        Schema::new(vec![
            Column::int("o_orderdate"),          // 1
            Column::int("o_orderkey"),           // 2
            Column::int("o_custkey"),            // 3
            Column::text("o_orderstatus", 1),    // 4
            Column::text("o_orderpriority", 11), // 5
            Column::int("o_totalprice"),         // 6
            Column::int("o_shippriority"),       // 7
        ])
        .expect("static schema is valid"),
    )
}

fn int_dict(range: std::ops::RangeInclusive<i32>) -> Result<Arc<Dictionary>> {
    let vals: Vec<Value> = range.map(Value::Int).collect();
    Ok(Arc::new(Dictionary::build(DataType::Int, vals.iter())?))
}

fn text_dict(width: usize, vals: &[&str]) -> Result<Arc<Dictionary>> {
    let vals: Vec<Value> = vals.iter().map(|s| Value::text(s)).collect();
    Ok(Arc::new(Dictionary::build(
        DataType::Text(width),
        vals.iter(),
    )?))
}

/// Per-column codecs of **LINEITEM-Z** (Figure 5 right, 52 bytes):
/// attributes 1/3/6/8 uncompressed; 2 delta-8; 4 pack-3; 5 pack-6;
/// 7/9 dict-2; 10 dict-3; 11 pack-28-bytes; 12/13 dict-4; 14–16 pack-16.
pub fn lineitem_z_compression() -> Result<Vec<ColumnCompression>> {
    use domains::*;
    Ok(vec![
        ColumnCompression::none(),                                  // 1
        ColumnCompression::new(Codec::ForDelta { bits: 8 }, None)?, // 2Z
        ColumnCompression::none(),                                  // 3
        ColumnCompression::new(Codec::BitPack { bits: 3 }, None)?,  // 4Z
        ColumnCompression::new(Codec::BitPack { bits: 6 }, None)?,  // 5Z
        ColumnCompression::none(),                                  // 6
        ColumnCompression::new(Codec::Dict { bits: 2 }, Some(text_dict(1, &RETURNFLAGS)?))?, // 7Z
        ColumnCompression::none(),                                  // 8
        ColumnCompression::new(Codec::Dict { bits: 2 }, Some(text_dict(25, &SHIPINSTRUCT)?))?, // 9Z
        ColumnCompression::new(Codec::Dict { bits: 3 }, Some(text_dict(10, &SHIPMODES)?))?, // 10Z
        ColumnCompression::new(Codec::TextPack { bytes: 28 }, None)?, // 11Z
        ColumnCompression::new(Codec::Dict { bits: 4 }, Some(int_dict(0..=MAX_DISCOUNT)?))?, // 12Z
        ColumnCompression::new(Codec::Dict { bits: 4 }, Some(int_dict(0..=MAX_TAX)?))?, // 13Z
        ColumnCompression::new(Codec::BitPack { bits: 16 }, None)?, // 14Z
        ColumnCompression::new(Codec::BitPack { bits: 16 }, None)?, // 15Z
        ColumnCompression::new(Codec::BitPack { bits: 16 }, None)?, // 16Z
    ])
}

/// Per-column codecs of **ORDERS-Z** (Figure 5 right, 12 bytes):
/// 1 pack-14; 2 delta-8; 3/6 uncompressed; 4 dict-2; 5 dict-3; 7 pack-1.
pub fn orders_z_compression() -> Result<Vec<ColumnCompression>> {
    use domains::*;
    Ok(vec![
        ColumnCompression::new(Codec::BitPack { bits: 14 }, None)?, // 1Z
        ColumnCompression::new(Codec::ForDelta { bits: 8 }, None)?, // 2Z
        ColumnCompression::none(),                                  // 3
        ColumnCompression::new(Codec::Dict { bits: 2 }, Some(text_dict(1, &ORDERSTATUS)?))?, // 4Z
        ColumnCompression::new(
            Codec::Dict { bits: 3 },
            Some(text_dict(11, &ORDERPRIORITY)?),
        )?, // 5Z
        ColumnCompression::none(),                                  // 6
        ColumnCompression::new(Codec::BitPack { bits: 1 }, None)?,  // 7Z
    ])
}

/// Plain (uncompressed) codecs for a schema.
pub fn uncompressed(schema: &Schema) -> Vec<ColumnCompression> {
    vec![ColumnCompression::none(); schema.len()]
}

/// Compressed tuple width in bits for a codec assignment.
pub fn compressed_bits(schema: &Schema, comps: &[ColumnCompression]) -> usize {
    schema
        .columns()
        .iter()
        .zip(comps)
        .map(|(c, comp)| comp.bits_per_value(c.dtype))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_widths_match_paper() {
        let l = lineitem_schema();
        assert_eq!(l.logical_width(), 150);
        assert_eq!(l.stored_width(), 152);
        assert_eq!(l.len(), 16);
        let o = orders_schema();
        assert_eq!(o.logical_width(), 32);
        assert_eq!(o.stored_width(), 32);
        assert_eq!(o.len(), 7);
    }

    #[test]
    fn compressed_widths_match_figure5() {
        let l = lineitem_schema();
        let lz = lineitem_z_compression().unwrap();
        let bits = compressed_bits(&l, &lz);
        // 32+8+32+3+6+32+2+8+2+3+224+4+4+16+16+16 = 408 bits = 51 bytes;
        // the paper quotes "52 bytes" (rounding per-attribute).
        assert_eq!(bits, 408);
        assert_eq!(bits.div_ceil(8), 51);

        let o = orders_schema();
        let oz = orders_z_compression().unwrap();
        let bits = compressed_bits(&o, &oz);
        assert_eq!(bits, 92);
        assert_eq!(bits.div_ceil(8), 12); // paper: "12 bytes"
    }

    #[test]
    fn dictionaries_cover_their_domains() {
        let lz = lineitem_z_compression().unwrap();
        assert_eq!(lz[6].dict.as_ref().unwrap().len(), 3);
        assert_eq!(lz[8].dict.as_ref().unwrap().len(), 4);
        assert_eq!(lz[9].dict.as_ref().unwrap().len(), 7);
        assert_eq!(lz[11].dict.as_ref().unwrap().len(), 11);
        assert_eq!(lz[12].dict.as_ref().unwrap().len(), 9);
        let oz = orders_z_compression().unwrap();
        assert_eq!(oz[3].dict.as_ref().unwrap().len(), 3);
        assert_eq!(oz[4].dict.as_ref().unwrap().len(), 5);
    }

    #[test]
    fn codecs_are_schema_compatible() {
        let l = lineitem_schema();
        for (c, comp) in l.columns().iter().zip(lineitem_z_compression().unwrap()) {
            comp.codec.validate_for(c.dtype).unwrap();
        }
        let o = orders_schema();
        for (c, comp) in o.columns().iter().zip(orders_z_compression().unwrap()) {
            comp.codec.validate_for(c.dtype).unwrap();
        }
    }
}
