//! Engine edge cases: degenerate block sizes, page sizes, empty inputs,
//! exotic predicates, and operator-boundary conditions that the main suites
//! don't stress.

use std::sync::Arc;

use rodb_engine::{
    op::collect_rows, AggSpec, AggStrategy, Aggregate, CmpOp, ExecContext, MergeJoin, Operator,
    Predicate, ScanLayout, ScanSpec, Sort,
};
use rodb_storage::{BuildLayouts, Table, TableBuilder};
use rodb_types::{Column, HardwareConfig, Schema, SystemConfig, Value};

fn table(n: usize, page_size: usize) -> Arc<Table> {
    let s = Arc::new(
        Schema::new(vec![
            Column::int("k"),
            Column::text("t", 3),
            Column::int("v"),
        ])
        .unwrap(),
    );
    let mut b = TableBuilder::new("t", s, page_size, BuildLayouts::both()).unwrap();
    for i in 0..n {
        b.push_row(&[
            Value::Int(i as i32),
            Value::text(["ab", "cd", ""][i % 3]),
            Value::Int((i * i) as i32 % 97),
        ])
        .unwrap();
    }
    Arc::new(b.finish().unwrap())
}

fn ctx_with_block(block_tuples: usize) -> ExecContext {
    let sys = SystemConfig {
        block_tuples,
        ..SystemConfig::default()
    };
    ExecContext::new(HardwareConfig::default(), sys, 1.0).unwrap()
}

#[test]
fn one_tuple_blocks_still_agree() {
    let t = table(257, 4096);
    let mut results = Vec::new();
    for layout in [
        ScanLayout::Row,
        ScanLayout::Column,
        ScanLayout::ColumnSingleIterator,
    ] {
        let ctx = ctx_with_block(1);
        let mut op = ScanSpec::new(t.clone(), layout, vec![0, 2])
            .with_predicates(vec![Predicate::gt(2, 50)])
            .build(&ctx)
            .unwrap();
        results.push(collect_rows(op.as_mut()).unwrap());
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
    assert!(!results[0].is_empty());
}

#[test]
fn giant_blocks_and_tiny_pages() {
    // Pages of 128 bytes (a handful of tuples each) with oversized blocks.
    let t = table(500, 128);
    let ctx = ctx_with_block(10_000);
    let mut op = ScanSpec::new(t.clone(), ScanLayout::Column, vec![0, 1, 2])
        .build(&ctx)
        .unwrap();
    let rows = collect_rows(op.as_mut()).unwrap();
    assert_eq!(rows.len(), 500);
    assert_eq!(rows[499][0], Value::Int(499));
}

#[test]
fn empty_table_through_every_operator() {
    let s = Arc::new(Schema::new(vec![Column::int("k"), Column::int("v")]).unwrap());
    let t = Arc::new(
        TableBuilder::new("e", s, 4096, BuildLayouts::both())
            .unwrap()
            .finish()
            .unwrap(),
    );
    let ctx = ExecContext::default_ctx();
    for layout in [
        ScanLayout::Row,
        ScanLayout::Column,
        ScanLayout::ColumnSingleIterator,
    ] {
        let scan = ScanSpec::new(t.clone(), layout, vec![0, 1])
            .build(&ctx)
            .unwrap();
        let mut sorted = Sort::new(scan, vec![0], &ctx).unwrap();
        assert!(sorted.next().unwrap().is_none());

        let scan = ScanSpec::new(t.clone(), layout, vec![0, 1])
            .build(&ctx)
            .unwrap();
        let mut agg = Aggregate::new(
            scan,
            Some(0),
            vec![AggSpec::count()],
            AggStrategy::Hash,
            &ctx,
        )
        .unwrap();
        assert!(agg.next().unwrap().is_none());
    }
    let l = ScanSpec::new(t.clone(), ScanLayout::Row, vec![0])
        .build(&ctx)
        .unwrap();
    let r = ScanSpec::new(t.clone(), ScanLayout::Column, vec![0])
        .build(&ctx)
        .unwrap();
    let mut j = MergeJoin::new(l, 0, r, 0, &ctx).unwrap();
    assert!(j.next().unwrap().is_none());
}

#[test]
fn all_comparison_operators_on_text_and_int() {
    let t = table(300, 4096);
    let oracle = t.read_all(rodb_storage::Layout::Row).unwrap();
    for (op, lit) in [
        (CmpOp::Lt, Value::Int(100)),
        (CmpOp::Le, Value::Int(100)),
        (CmpOp::Eq, Value::Int(100)),
        (CmpOp::Ne, Value::Int(100)),
        (CmpOp::Ge, Value::Int(100)),
        (CmpOp::Gt, Value::Int(100)),
    ] {
        let p = Predicate::new(0, op, lit.clone());
        let expect = oracle.iter().filter(|r| p.eval_value(&r[0])).count();
        let ctx = ExecContext::default_ctx();
        let mut scan = ScanSpec::new(t.clone(), ScanLayout::Column, vec![0])
            .with_predicates(vec![p])
            .build(&ctx)
            .unwrap();
        assert_eq!(
            collect_rows(scan.as_mut()).unwrap().len(),
            expect,
            "{op:?} int"
        );
    }
    for (op, lit) in [
        (CmpOp::Eq, Value::text("cd")),
        (CmpOp::Ne, Value::text("cd")),
        (CmpOp::Lt, Value::text("cd")),
        (CmpOp::Ge, Value::text("ab")),
    ] {
        let p = Predicate::new(1, op, lit);
        let expect = oracle.iter().filter(|r| p.eval_value(&r[1])).count();
        let ctx = ExecContext::default_ctx();
        let mut scan = ScanSpec::new(t.clone(), ScanLayout::Row, vec![1])
            .with_predicates(vec![p])
            .build(&ctx)
            .unwrap();
        assert_eq!(
            collect_rows(scan.as_mut()).unwrap().len(),
            expect,
            "{op:?} text"
        );
    }
}

#[test]
fn contradictory_and_redundant_predicates() {
    let t = table(200, 4096);
    let ctx = ExecContext::default_ctx();
    // k < 50 AND k > 100 → empty.
    let mut scan = ScanSpec::new(t.clone(), ScanLayout::Column, vec![0])
        .with_predicates(vec![Predicate::lt(0, 50), Predicate::gt(0, 100)])
        .build(&ctx)
        .unwrap();
    assert!(collect_rows(scan.as_mut()).unwrap().is_empty());
    // Duplicate predicate on the same column → same as single.
    let ctx = ExecContext::default_ctx();
    let mut scan = ScanSpec::new(t.clone(), ScanLayout::Column, vec![0])
        .with_predicates(vec![Predicate::lt(0, 50), Predicate::lt(0, 50)])
        .build(&ctx)
        .unwrap();
    assert_eq!(collect_rows(scan.as_mut()).unwrap().len(), 50);
}

#[test]
fn sort_then_sorted_aggregation_pipeline() {
    let t = table(400, 4096);
    let ctx = ExecContext::default_ctx();
    // Group by the text tag through an explicit Sort → Sorted aggregation.
    let scan = ScanSpec::new(t.clone(), ScanLayout::Column, vec![1, 2])
        .build(&ctx)
        .unwrap();
    let sorted = Sort::new(scan, vec![0], &ctx).unwrap();
    let mut agg = Aggregate::new(
        Box::new(sorted),
        Some(0),
        vec![AggSpec::count(), AggSpec::sum(1)],
        AggStrategy::Sorted,
        &ctx,
    )
    .unwrap();
    let rows = collect_rows(&mut agg).unwrap();
    assert_eq!(rows.len(), 3); // "", "ab", "cd"
    let total: i64 = rows.iter().map(|r| r[1].as_num().unwrap()).sum();
    assert_eq!(total, 400);

    // Hash agg over the same input agrees.
    let ctx2 = ExecContext::default_ctx();
    let scan = ScanSpec::new(t, ScanLayout::Column, vec![1, 2])
        .build(&ctx2)
        .unwrap();
    let mut hash = Aggregate::new(
        scan,
        Some(0),
        vec![AggSpec::count(), AggSpec::sum(1)],
        AggStrategy::Hash,
        &ctx2,
    )
    .unwrap();
    assert_eq!(collect_rows(&mut hash).unwrap(), rows);
}

#[test]
fn self_merge_join_is_identity_sized() {
    let t = table(150, 4096);
    let ctx = ExecContext::default_ctx();
    let l = ScanSpec::new(t.clone(), ScanLayout::Row, vec![0, 2])
        .build(&ctx)
        .unwrap();
    let r = ScanSpec::new(t.clone(), ScanLayout::Column, vec![0])
        .build(&ctx)
        .unwrap();
    let mut j = MergeJoin::new(l, 0, r, 0, &ctx).unwrap();
    let rows = collect_rows(&mut j).unwrap();
    // k is unique → exactly one match per row.
    assert_eq!(rows.len(), 150);
    for row in &rows {
        assert_eq!(row[0], row[2]);
    }
}

#[test]
fn projection_with_repeat_free_reordering_across_pages() {
    // A projection ordering that reverses the schema, over many pages.
    let t = table(5_000, 512);
    let ctx = ExecContext::default_ctx();
    let mut scan = ScanSpec::new(t.clone(), ScanLayout::Column, vec![2, 1, 0])
        .with_predicates(vec![Predicate::eq(1, "ab")])
        .build(&ctx)
        .unwrap();
    let rows = collect_rows(scan.as_mut()).unwrap();
    assert!(!rows.is_empty());
    for r in &rows {
        assert_eq!(r[1].to_string(), "ab");
        assert_eq!(r[0].as_int().unwrap(), {
            let k = r[2].as_int().unwrap() as usize;
            ((k * k) % 97) as i32
        });
    }
}
