//! Accounting invariants: the simulated meters must conserve bytes, count
//! work consistently across layouts, and respect the §4.1 breakdown algebra
//! for any query the engine runs.

use std::sync::Arc;

use rodb_engine::{run_to_completion, ExecContext, Predicate, ScanLayout, ScanSpec};
use rodb_storage::{BuildLayouts, Table, TableBuilder};
use rodb_types::{Column, HardwareConfig, Schema, SystemConfig, Value};

fn table(n: usize) -> Arc<Table> {
    let s = Arc::new(
        Schema::new(vec![
            Column::int("a"),
            Column::int("b"),
            Column::text("t", 9),
            Column::int("c"),
        ])
        .unwrap(),
    );
    let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::both()).unwrap();
    for i in 0..n {
        b.push_row(&[
            Value::Int((i % 1000) as i32),
            Value::Int(i as i32),
            Value::text("xyz"),
            Value::Int(-(i as i32)),
        ])
        .unwrap();
    }
    Arc::new(b.finish().unwrap())
}

fn run(
    t: &Arc<Table>,
    layout: ScanLayout,
    proj: Vec<usize>,
    preds: Vec<Predicate>,
    scale: f64,
) -> rodb_engine::RunReport {
    let ctx = ExecContext::new(HardwareConfig::default(), SystemConfig::default(), scale).unwrap();
    let mut op = ScanSpec::new(t.clone(), layout, proj)
        .with_predicates(preds)
        .build(&ctx)
        .unwrap();
    run_to_completion(op.as_mut(), &ctx).unwrap()
}

#[test]
fn bytes_read_conservation() {
    let t = table(20_000);
    // Row scan reads exactly the row file.
    let r = run(&t, ScanLayout::Row, vec![0], vec![], 1.0);
    assert!((r.io.bytes_read - t.row_storage().unwrap().byte_len() as f64).abs() < 1.0);
    // Column scan reads exactly the selected column files.
    let cs = t.col_storage().unwrap();
    for proj in [vec![0usize], vec![0, 2], vec![0, 1, 2, 3]] {
        let r = run(&t, ScanLayout::Column, proj.clone(), vec![], 1.0);
        let expect: u64 = proj.iter().map(|&c| cs.columns[c].byte_len()).sum();
        assert!(
            (r.io.bytes_read - expect as f64).abs() < 1.0,
            "proj {proj:?}: {} vs {expect}",
            r.io.bytes_read
        );
    }
}

#[test]
fn io_time_decomposes_into_components() {
    let t = table(20_000);
    for layout in [ScanLayout::Row, ScanLayout::Column] {
        let r = run(&t, layout, vec![0, 1, 2, 3], vec![], 60.0);
        let total = r.io.transfer_s + r.io.seek_s + r.io.comp_s;
        assert!(
            (r.io_s() - total).abs() < 1e-9,
            "{layout}: elapsed {} vs components {total}",
            r.io_s()
        );
        assert!(r.io.comp_s == 0.0); // no competitor registered
    }
}

#[test]
fn breakdown_total_is_sum_of_parts_and_nonnegative() {
    let t = table(20_000);
    for layout in [
        ScanLayout::Row,
        ScanLayout::Column,
        ScanLayout::ColumnSlow,
        ScanLayout::ColumnSingleIterator,
    ] {
        let r = run(
            &t,
            layout,
            vec![0, 1, 2],
            vec![Predicate::lt(0, 100)],
            100.0,
        );
        let b = &r.cpu;
        for part in [b.sys, b.usr_uop, b.usr_l2, b.usr_l1, b.usr_rest] {
            assert!(part >= 0.0, "{layout}: negative component");
        }
        let sum = b.sys + b.usr_uop + b.usr_l2 + b.usr_l1 + b.usr_rest;
        assert!((b.total() - sum).abs() < 1e-12);
        assert!(r.elapsed_s + 1e-12 >= r.io_s().max(b.total()));
    }
}

#[test]
fn equal_work_same_counters_across_runs() {
    // Determinism: identical queries meter identically.
    let t = table(10_000);
    let a = run(
        &t,
        ScanLayout::Column,
        vec![0, 3],
        vec![Predicate::lt(0, 77)],
        10.0,
    );
    let b = run(
        &t,
        ScanLayout::Column,
        vec![0, 3],
        vec![Predicate::lt(0, 77)],
        10.0,
    );
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.io.seeks, b.io.seeks);
    assert!((a.io_s() - b.io_s()).abs() < 1e-12);
    assert!((a.cpu.total() - b.cpu.total()).abs() < 1e-12);
}

#[test]
fn projecting_more_columns_never_reduces_work() {
    let t = table(10_000);
    let mut prev_io = 0.0;
    let mut prev_cpu = 0.0;
    for k in 1..=4usize {
        let r = run(
            &t,
            ScanLayout::Column,
            (0..k).collect(),
            vec![Predicate::lt(0, 100)],
            60.0,
        );
        assert!(r.io.bytes_read >= prev_io);
        assert!(r.cpu.total() + 1e-9 >= prev_cpu);
        prev_io = r.io.bytes_read;
        prev_cpu = r.cpu.total();
    }
}

#[test]
fn selectivity_moves_cpu_not_io() {
    let t = table(20_000);
    let lo = run(
        &t,
        ScanLayout::Column,
        vec![0, 1, 2, 3],
        vec![Predicate::lt(0, 1)],
        60.0,
    );
    let hi = run(
        &t,
        ScanLayout::Column,
        vec![0, 1, 2, 3],
        vec![Predicate::lt(0, 999)],
        60.0,
    );
    assert!((lo.io.bytes_read - hi.io.bytes_read).abs() < 1.0);
    assert!(hi.cpu.user() > lo.cpu.user());
    assert!(hi.rows > lo.rows);
}

#[test]
fn sys_time_tracks_bytes_and_switches() {
    let t = table(20_000);
    // More column files → more switches → more kernel time, even at equal
    // byte counts (compare 1 wide text column vs 2 narrow int columns of
    // similar size is messy; instead: same projection, row vs column).
    let row = run(&t, ScanLayout::Row, vec![0, 1, 2, 3], vec![], 600.0);
    let col = run(&t, ScanLayout::Column, vec![0, 1, 2, 3], vec![], 600.0);
    // Column reads slightly fewer bytes (no padding) but performs many more
    // switches; its per-byte kernel overhead must exceed the row store's.
    let row_per_byte = row.cpu.sys / row.io.bytes_read;
    let col_per_byte = col.cpu.sys / col.io.bytes_read;
    assert!(col_per_byte > row_per_byte);
    assert!(col.io.seeks > row.io.seeks * 10);
}

#[test]
fn io_settlement_is_idempotent_across_runs_on_one_context() {
    // Regression: run_to_completion used to charge cumulative disk stats on
    // every call, double-counting kernel CPU when a context was reused.
    let t = table(20_000);
    let ctx = ExecContext::new(HardwareConfig::default(), SystemConfig::default(), 60.0).unwrap();
    let mut op1 = ScanSpec::new(t.clone(), ScanLayout::Row, vec![0])
        .build(&ctx)
        .unwrap();
    let r1 = run_to_completion(op1.as_mut(), &ctx).unwrap();
    let mut op2 = ScanSpec::new(t.clone(), ScanLayout::Row, vec![0])
        .build(&ctx)
        .unwrap();
    let r2 = run_to_completion(op2.as_mut(), &ctx).unwrap();
    // The second report includes both runs' work, but sys must grow by
    // roughly one run's worth (plus a few multi-stream seeks for the second
    // file), not by the cumulative total again — the old bug produced ~3×.
    let one_run_sys = r1.cpu.sys;
    assert!(
        r2.cpu.sys > 1.8 * one_run_sys && r2.cpu.sys < 2.5 * one_run_sys,
        "sys after 2 runs {} vs one run {}",
        r2.cpu.sys,
        one_run_sys
    );
}

#[test]
fn competitor_time_is_visible_and_separate() {
    let ctx = ExecContext::new(HardwareConfig::default(), SystemConfig::default(), 600.0).unwrap();
    ctx.add_competing_scan();
    let t = table(20_000);
    let mut op = ScanSpec::new(t.clone(), ScanLayout::Row, vec![0])
        .build(&ctx)
        .unwrap();
    let r = run_to_completion(op.as_mut(), &ctx).unwrap();
    assert!(r.io.comp_bursts > 0);
    assert!(r.io.comp_s > 0.0);
    // Foreground byte accounting excludes the competitor's transfers.
    assert!((r.io.bytes_read - t.row_storage().unwrap().byte_len() as f64 * 600.0).abs() < 1.0);
}
