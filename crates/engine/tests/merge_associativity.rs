//! The parallel layer folds per-morsel accounting into query-wide totals
//! by repeated `merge`. Morsel boundaries are a scheduling artifact, so
//! the fold must be order- and grouping-insensitive: folding serially,
//! pairwise as a tree, or in reverse must produce identical totals —
//! exact for integer counters, within float-summation reordering noise
//! for seconds/bytes — and the same holds for span-tree aggregates.

use rodb_cpu::{CostParams, CpuCounters, CpuMeter, OpCosts};
use rodb_io::{CacheStats, IoStats, RecoveryStats};
use rodb_trace::{Metrics, QueryTrace, SpanKind, SpanNode};

/// Deterministic value stream (an LCG) so each "morsel" is distinct.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
    fn next_u64(&mut self) -> u64 {
        self.next_f64();
        self.0 >> 40
    }
}

fn sample_io(r: &mut Rng) -> IoStats {
    IoStats {
        bytes_read: r.next_f64() * 1e6,
        seeks: r.next_u64(),
        bursts: r.next_u64(),
        comp_bursts: r.next_u64(),
        transfer_s: r.next_f64(),
        seek_s: r.next_f64(),
        comp_s: r.next_f64(),
        pages_skipped: r.next_u64(),
        recovery: RecoveryStats {
            retries: r.next_u64(),
            repairs: r.next_u64(),
            quarantined_pages: r.next_u64(),
            dropped_rows: r.next_u64(),
            wal_replayed: r.next_u64(),
            wal_discarded: r.next_u64(),
        },
        cache: CacheStats {
            hits: r.next_u64(),
            misses: r.next_u64(),
            evictions: r.next_u64(),
            prefetched: r.next_u64(),
        },
    }
}

/// Fold three ways: left-to-right, pairwise tree, right-to-left.
fn fold_three_ways<T: Clone + Default>(parts: &[T], merge: impl Fn(&mut T, &T)) -> [T; 3] {
    let serial = parts.iter().fold(T::default(), |mut acc, p| {
        merge(&mut acc, p);
        acc
    });
    let mut level: Vec<T> = parts.to_vec();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                let mut acc = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    merge(&mut acc, b);
                }
                acc
            })
            .collect();
    }
    let tree = level.pop().unwrap_or_default();
    let reversed = parts.iter().rev().fold(T::default(), |mut acc, p| {
        merge(&mut acc, p);
        acc
    });
    [serial, tree, reversed]
}

fn close(a: f64, b: f64, what: &str) {
    let tol = 1e-12 * a.abs().max(b.abs()).max(1.0);
    assert!((a - b).abs() <= tol, "{what}: {a} vs {b}");
}

#[test]
fn io_stats_merge_is_order_insensitive() {
    let mut r = Rng(7);
    let parts: Vec<IoStats> = (0..9).map(|_| sample_io(&mut r)).collect();
    let [serial, tree, reversed] = fold_three_ways(&parts, |a, b| a.merge(b));
    for other in [&tree, &reversed] {
        // Integer counters must agree exactly.
        assert_eq!(serial.seeks, other.seeks);
        assert_eq!(serial.bursts, other.bursts);
        assert_eq!(serial.comp_bursts, other.comp_bursts);
        assert_eq!(serial.pages_skipped, other.pages_skipped);
        assert_eq!(serial.recovery, other.recovery);
        assert_eq!(serial.cache, other.cache);
        close(serial.bytes_read, other.bytes_read, "bytes_read");
        close(serial.transfer_s, other.transfer_s, "transfer_s");
        close(serial.seek_s, other.seek_s, "seek_s");
        close(serial.comp_s, other.comp_s, "comp_s");
        close(serial.total_s(), other.total_s(), "total_s");
    }
}

#[test]
fn recovery_stats_merge_is_exact_in_any_order() {
    let mut r = Rng(23);
    let parts: Vec<RecoveryStats> = (0..12)
        .map(|_| RecoveryStats {
            retries: r.next_u64(),
            repairs: r.next_u64(),
            quarantined_pages: r.next_u64(),
            dropped_rows: r.next_u64(),
            wal_replayed: r.next_u64(),
            wal_discarded: r.next_u64(),
        })
        .collect();
    let [serial, tree, reversed] = fold_three_ways(&parts, |a, b| a.merge(b));
    assert_eq!(serial, tree);
    assert_eq!(serial, reversed);
}

#[test]
fn cache_stats_merge_is_exact_in_any_order() {
    let mut r = Rng(61);
    let parts: Vec<CacheStats> = (0..12)
        .map(|_| CacheStats {
            hits: r.next_u64(),
            misses: r.next_u64(),
            evictions: r.next_u64(),
            prefetched: r.next_u64(),
        })
        .collect();
    let [serial, tree, reversed] = fold_three_ways(&parts, |a, b| a.merge(b));
    assert_eq!(serial, tree);
    assert_eq!(serial, reversed);
}

/// Meters carry both raw counters and (when profiling) the per-phase
/// split; both must survive regrouping.
#[test]
fn cpu_meter_merge_is_order_insensitive() {
    let mut r = Rng(41);
    let make = |r: &mut Rng| {
        let mut m = CpuMeter::new(OpCosts::default(), CostParams::default());
        m.enable_profiling();
        m.add_uops(r.next_f64() * 1e5);
        m.branches(r.next_f64() * 1e4, r.next_f64() * 1e4);
        m
    };
    let parts: Vec<CpuMeter> = (0..7).map(|_| make(&mut r)).collect();
    // CpuMeter is not Default/Clone; fold its counters through a fresh meter.
    let fold = |order: Vec<&CpuMeter>| {
        let mut acc = CpuMeter::new(OpCosts::default(), CostParams::default());
        acc.enable_profiling();
        for m in order {
            acc.merge(m);
        }
        acc
    };
    let serial = fold(parts.iter().collect());
    let reversed = fold(parts.iter().rev().collect());
    let totals = |c: &CpuCounters| [c.uops, c.rand_misses, c.l1_lines, c.branch_mispredicts];
    for (a, b) in totals(serial.counters())
        .iter()
        .zip(totals(reversed.counters()))
    {
        close(*a, b, "meter counters");
    }
    let (ps, pr) = (serial.profile_snapshot(), reversed.profile_snapshot());
    for (pa, pb) in ps.iter().zip(pr.iter()) {
        close(pa.1.uops, pb.1.uops, "phase uops");
        close(
            pa.1.branch_mispredicts,
            pb.1.branch_mispredicts,
            "phase mispredicts",
        );
    }
}

fn sample_trace(r: &mut Rng) -> QueryTrace {
    let scan = SpanNode {
        label: "scan[column] t".to_string(),
        kind: SpanKind::Scan,
        metrics: {
            let mut m = Metrics::default();
            m.add("rows", (r.next_u64() % 1000) as f64);
            m.add("io.bytes_read", r.next_f64() * 1e5);
            m.add("wall_s", r.next_f64());
            m
        },
        children: Vec::new(),
    };
    let mut root = SpanNode {
        label: "query".to_string(),
        kind: SpanKind::Query,
        metrics: Metrics::default(),
        children: vec![scan],
    };
    root.metrics
        .add("rows", root.children[0].metrics.get("rows"));
    QueryTrace {
        root,
        events: Vec::new(),
        dropped_events: 0,
    }
}

#[test]
fn span_tree_merge_aggregates_identically_in_any_order() {
    let mut r = Rng(99);
    let parts: Vec<QueryTrace> = (0..6).map(|_| sample_trace(&mut r)).collect();
    let forward = QueryTrace::merge_morsels(&parts).expect("non-empty");
    let backward: Vec<QueryTrace> = {
        let mut v = parts.clone();
        v.reverse();
        v
    };
    let backward = QueryTrace::merge_morsels(&backward).expect("non-empty");
    for key in ["rows", "morsels"] {
        close(forward.metric(key), backward.metric(key), key);
    }
    // Same span tree shape: one scan child aggregating all six morsels.
    assert_eq!(forward.root.children.len(), 1);
    assert_eq!(backward.root.children.len(), 1);
    let (fs, bs) = (&forward.root.children[0], &backward.root.children[0]);
    assert_eq!(fs.label, bs.label);
    for key in ["rows", "io.bytes_read", "wall_s"] {
        close(fs.metrics.get(key), bs.metrics.get(key), key);
    }
}
