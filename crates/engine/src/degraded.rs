//! Degraded-scan support (`on_corrupt = Skip`).
//!
//! When a page is bad on every replica, a `Skip` scan quarantines it and
//! drops exactly its rows. The unit of dropping is a **position range**: the
//! global row ordinals the page *would* hold by file geometry
//! (`page_index × capacity`), never the damaged page's own count — a
//! truncated page cannot be trusted to describe itself. Every scanner of a
//! projection consults the same [`DropSet`], so a multi-column scan drops
//! matched ranges across all columns and projections never misalign.

use rodb_types::{Error, OnCorrupt};

/// Whether this error should be absorbed as a degraded skip: only under the
/// `Skip` policy, and only for retryable media faults — structural format
/// errors behind a valid checksum are software bugs and still abort.
pub fn should_skip(policy: OnCorrupt, err: &Error) -> bool {
    policy == OnCorrupt::Skip && err.is_retryable()
}

/// A set of half-open row-ordinal ranges `[start, end)` dropped by a
/// degraded scan. Ranges are kept merged and sorted, so membership is a
/// binary search and the total row count is exact even when several columns
/// of one projection quarantine overlapping pages of different geometry.
#[derive(Debug, Clone, Default)]
pub struct DropSet {
    ranges: Vec<(u64, u64)>,
}

impl DropSet {
    /// Add `[start, end)`, merging with any overlapping or adjacent ranges.
    pub fn add(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Position of the first range whose end could touch [start, end).
        let i = self.ranges.partition_point(|&(_, e)| e < start);
        let mut lo = start;
        let mut hi = end;
        let mut j = i;
        while j < self.ranges.len() && self.ranges[j].0 <= hi {
            lo = lo.min(self.ranges[j].0);
            hi = hi.max(self.ranges[j].1);
            j += 1;
        }
        self.ranges.splice(i..j, [(lo, hi)]);
    }

    /// Whether row ordinal `pos` is inside a dropped range.
    #[inline]
    pub fn contains(&self, pos: u64) -> bool {
        let i = self.ranges.partition_point(|&(_, e)| e <= pos);
        i < self.ranges.len() && self.ranges[i].0 <= pos
    }

    /// Total rows covered (ranges are disjoint after merging).
    pub fn total(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The merged ranges, sorted (for tests and reports).
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodb_types::CorruptKind;

    #[test]
    fn add_merges_overlaps_and_adjacency() {
        let mut d = DropSet::default();
        d.add(10, 20);
        d.add(30, 40);
        assert_eq!(d.ranges(), &[(10, 20), (30, 40)]);
        assert_eq!(d.total(), 20);
        // Adjacent on the left, overlapping on the right: one range.
        d.add(20, 35);
        assert_eq!(d.ranges(), &[(10, 40)]);
        assert_eq!(d.total(), 30);
        // Subsumed adds change nothing.
        d.add(12, 13);
        assert_eq!(d.total(), 30);
        // Empty adds are ignored.
        d.add(50, 50);
        d.add(60, 50);
        assert_eq!(d.ranges(), &[(10, 40)]);
        // Bridge across several existing ranges.
        d.add(100, 110);
        d.add(0, 200);
        assert_eq!(d.ranges(), &[(0, 200)]);
    }

    #[test]
    fn contains_is_exact_at_boundaries() {
        let mut d = DropSet::default();
        d.add(10, 20);
        d.add(40, 41);
        assert!(!d.contains(9));
        assert!(d.contains(10));
        assert!(d.contains(19));
        assert!(!d.contains(20));
        assert!(d.contains(40));
        assert!(!d.contains(41));
        assert!(DropSet::default().is_empty());
        assert!(!DropSet::default().contains(0));
    }

    #[test]
    fn skip_gate_requires_policy_and_retryable_error() {
        let media = rodb_types::Error::corrupt_kind(CorruptKind::Checksum, "crc");
        let format = rodb_types::Error::corrupt("bad count");
        assert!(should_skip(OnCorrupt::Skip, &media));
        assert!(!should_skip(OnCorrupt::Skip, &format));
        assert!(!should_skip(OnCorrupt::Retry, &media));
        assert!(!should_skip(OnCorrupt::Fail, &media));
    }
}
