//! The read-optimized relational query engine (§2.2 of the paper).
//!
//! A pull-based block-iterator engine whose row and column table scanners
//! produce identical block formats (Figure 4), making them interchangeable
//! under the shared relational operators: selection/projection in the
//! scanners, aggregation (hash and sort based), and merge join.

pub mod agg;
pub mod block;
pub mod codepred;
pub mod degraded;
pub mod exec;
pub mod join;
pub mod memscan;
pub mod op;
pub mod par;
pub mod plan;
pub mod predicate;
pub mod scan_col;
pub mod scan_col_single;
pub mod scan_row;
pub mod scan_shared;
pub mod sched;
pub mod shared_cursor;
pub mod sort;
pub mod traced;

pub use agg::{merge_partials, AggFunc, AggPartial, AggSpec, AggStrategy, Aggregate};
pub use block::TupleBlock;
pub use codepred::{rewrite, rewrite_all, zone_rejects, CodePred};
pub use degraded::DropSet;
pub use exec::{run_to_completion, RunReport};
pub use join::MergeJoin;
pub use memscan::{Chain, MemScan};
pub use op::{ExecContext, Operator};
pub use par::{AggPlan, ParallelExec, ParallelOutcome};
pub use plan::{ScanLayout, ScanSpec};
pub use predicate::{CmpOp, Predicate};
pub use scan_col::{ColumnScanMode, ColumnScanner};
pub use scan_col_single::SingleIteratorColumnScanner;
pub use scan_row::RowScanner;
pub use scan_shared::{shared_row_scan, SharedScanOutput, SharedScanQuery};
pub use sched::{emit_aggregate, JobOutcome, QueryJob, TaskScheduler};
pub use shared_cursor::{CursorQuery, QueryDone, SharedCursor, SharedCursorConfig};
pub use sort::Sort;
pub use traced::{apply_report, finish_query_trace, record_block, TracedOp};
