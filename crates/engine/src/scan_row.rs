//! The row-store table scanner (§2.2.2).
//!
//! "The row scanner is straightforward: it iterates over the pages contained
//! inside an I/O buffer, and, for each page, it iterates over the tuples,
//! applying the predicates. Tuples that qualify are projected according to
//! the list of attributes selected by the query and are placed in a block of
//! tuples."
//!
//! Handles both row formats: plain padded tuples and the packed (compressed)
//! tuples of the -Z tables, whose FOR-delta attributes force sequential
//! per-tuple decoding (§4.4: the row store "shows a small increase in user
//! CPU time ... the cost of decompression").

use std::sync::Arc;

use rodb_compress::{Codec, CodecKind};
use rodb_io::{FileId, FileStream, PageRef};
use rodb_storage::{PackedRowPage, PaxPage, QuarantinedPage, RowFormat, RowPage, Table};
use rodb_types::{Error, Result, Schema};

use crate::block::TupleBlock;
use crate::codepred::{rewrite, CodePred};
use crate::degraded::{self, DropSet};
use crate::op::{ExecContext, Operator};
use crate::predicate::Predicate;

/// Scans a table's row representation, applying SARGable predicates and a
/// projection.
pub struct RowScanner {
    table: Arc<Table>,
    ctx: ExecContext,
    projection: Vec<usize>,
    predicates: Vec<Predicate>,
    out_schema: Arc<Schema>,
    stream: FileStream,
    file_id: FileId,
    row_ordinal: u64,
    /// Full-page tuple capacity: the geometric unit of page → ordinal math.
    tpp: u64,
    done: bool,
    /// Ordinal ranges dropped by degraded skips (empty unless `on_corrupt =
    /// Skip` absorbed a page whose every replica was bad).
    dropped: DropSet,
    /// Row-ordinal range `[start, end)` this scanner covers (whole table by
    /// default; a morsel of it under parallel execution).
    range: (u64, u64),
    /// File bytes inside this scanner's page window (for memory accounting).
    window_bytes: f64,
    /// Bytes of the fields the projection copies per qualifying tuple.
    proj_bytes: usize,
    /// Qualifying projected tuples not yet emitted (strided by out width).
    pending: Vec<u8>,
    pending_pos: Vec<u64>,
    pending_taken: usize,
    scratch: Vec<u8>,
}

impl RowScanner {
    /// Build a row scanner. `projection` lists base-table column indices in
    /// output order; `predicates` reference base-table columns.
    pub fn new(
        table: Arc<Table>,
        projection: Vec<usize>,
        predicates: Vec<Predicate>,
        ctx: &ExecContext,
    ) -> Result<RowScanner> {
        RowScanner::new_range(table, projection, predicates, ctx, None)
    }

    /// Build a row scanner restricted to the row-ordinal range `[start, end)`
    /// — one morsel of a parallel scan. `None` scans the whole table.
    pub fn new_range(
        table: Arc<Table>,
        projection: Vec<usize>,
        predicates: Vec<Predicate>,
        ctx: &ExecContext,
        range: Option<(u64, u64)>,
    ) -> Result<RowScanner> {
        if projection.is_empty() {
            return Err(Error::InvalidPlan("empty projection".into()));
        }
        for p in &predicates {
            p.validate(&table.schema)?;
        }
        let out_schema = Arc::new(table.schema.project(&projection)?);
        let rs = table.row_storage()?;
        let file_id = ctx.next_file_id();
        let mut stream = FileStream::new(ctx.disk.clone(), file_id, rs.file.clone(), rs.page_size)?;
        let range = match range {
            Some((s, e)) => (s.min(table.row_count), e.min(table.row_count)),
            None => (0, table.row_count),
        };
        // Clamp the stream to the pages holding the range; the scanner never
        // touches (or pays I/O for) the rest of the file.
        let tpp = rs.tuples_per_page.max(1) as u64;
        let first_page = (range.0 / tpp) as usize;
        let end_page = (range.1.div_ceil(tpp) as usize).min(rs.pages);
        stream.set_window(first_page, end_page);
        let window_bytes = end_page.saturating_sub(first_page) as f64 * rs.page_size as f64;
        // A single sequential scan keeps one request outstanding.
        ctx.disk.borrow_mut().set_interleave(1);
        let proj_bytes = table.schema.selected_bytes(&projection);
        Ok(RowScanner {
            table,
            ctx: ctx.clone(),
            projection,
            predicates,
            out_schema,
            stream,
            file_id,
            row_ordinal: first_page as u64 * tpp,
            tpp,
            done: false,
            dropped: DropSet::default(),
            range,
            window_bytes,
            proj_bytes,
            pending: Vec::new(),
            pending_pos: Vec::new(),
            pending_taken: 0,
            scratch: Vec::new(),
        })
    }

    fn pending_remaining(&self) -> usize {
        self.pending_pos.len() - self.pending_taken
    }

    /// Process one whole page into the pending buffer. False at EOF.
    fn fill_from_next_page(&mut self) -> Result<bool> {
        let pref = match self.stream.next_page() {
            Some(p) => p,
            None => return Ok(false),
        };
        let page_index = pref.page_index as u64;
        // Ordinals come from file geometry, not a running counter: a damaged
        // page skipped under degraded reads must not shift the positions of
        // every page after it.
        self.row_ordinal = page_index * self.tpp;
        let pend_bytes = self.pending.len();
        let pend_rows = self.pending_pos.len();
        match self.process_page(&pref) {
            Ok(()) => Ok(true),
            Err(e) if degraded::should_skip(self.ctx.sys.on_corrupt, &e) => {
                // Degraded skip: roll back anything the half-parsed page
                // contributed, quarantine it, and drop exactly the ordinals
                // it would hold by geometry (never its own claimed count).
                self.pending.truncate(pend_bytes);
                self.pending_pos.truncate(pend_rows);
                if self
                    .table
                    .quarantine
                    .insert(QuarantinedPage::Row { page: page_index })
                {
                    self.ctx.disk.borrow_mut().note_quarantined(1);
                }
                let start = (page_index * self.tpp).max(self.range.0);
                let end = ((page_index + 1) * self.tpp).min(self.range.1);
                self.dropped.add(start, end);
                Ok(true)
            }
            Err(e) => Err(e.with_page_context(self.file_id.0, page_index)),
        }
    }

    /// Parse one page, appending qualifying projected tuples to the pending
    /// buffer and charging CPU work.
    fn process_page(&mut self, pref: &PageRef) -> Result<()> {
        let schema = self.table.schema.clone();
        let rs = self.table.row_storage()?;
        let out_width = self.out_schema.logical_width();

        let mut visited = 0u64;
        let mut pred_evals = vec![0u64; self.predicates.len()];
        let mut pred_passes = vec![0u64; self.predicates.len()];
        let mut passed_total = 0u64;
        let mut dense_l1 = false;

        match &rs.format {
            RowFormat::Plain { stored_width } => {
                let page = RowPage::new(pref.bytes(), *stored_width)?;
                for raw in page.tuples() {
                    if self.row_ordinal < self.range.0 || self.row_ordinal >= self.range.1 {
                        self.row_ordinal += 1;
                        continue;
                    }
                    visited += 1;
                    let mut pass = true;
                    for (pi, pred) in self.predicates.iter().enumerate() {
                        pred_evals[pi] += 1;
                        let dt = schema.dtype(pred.col);
                        let off = schema.offset(pred.col);
                        if pred.eval_raw(dt, &raw[off..off + dt.width()]) {
                            pred_passes[pi] += 1;
                        } else {
                            pass = false;
                            break;
                        }
                    }
                    if pass {
                        passed_total += 1;
                        for &c in &self.projection {
                            let off = schema.offset(c);
                            let w = schema.dtype(c).width();
                            self.pending.extend_from_slice(&raw[off..off + w]);
                        }
                        self.pending_pos.push(self.row_ordinal);
                    }
                    self.row_ordinal += 1;
                }
            }
            RowFormat::Pax => {
                // PAX: same bytes off disk, but fields of one column are
                // contiguous in the page — predicate evaluation touches
                // densely packed cache lines (§6's locality benefit).
                dense_l1 = true;
                let page = PaxPage::new(pref.bytes(), &schema)?;
                for i in 0..page.count() {
                    if self.row_ordinal < self.range.0 || self.row_ordinal >= self.range.1 {
                        self.row_ordinal += 1;
                        continue;
                    }
                    visited += 1;
                    let mut pass = true;
                    for (pi, pred) in self.predicates.iter().enumerate() {
                        pred_evals[pi] += 1;
                        let dt = schema.dtype(pred.col);
                        if pred.eval_raw(dt, page.field(&schema, i, pred.col)) {
                            pred_passes[pi] += 1;
                        } else {
                            pass = false;
                            break;
                        }
                    }
                    if pass {
                        passed_total += 1;
                        for &c in &self.projection {
                            self.pending.extend_from_slice(page.field(&schema, i, c));
                        }
                        self.pending_pos.push(self.row_ordinal);
                    }
                    self.row_ordinal += 1;
                }
            }
            RowFormat::Packed { comps, .. } => {
                let page = PackedRowPage::new(pref.bytes(), comps)?;
                // Fast path: rewrite each predicate against this page's
                // compression metadata; rewritten predicates are evaluated on
                // the raw stored codes without decoding the field.
                let code_preds: Vec<Option<CodePred>> = if self.ctx.sys.scan_fast_path {
                    self.predicates
                        .iter()
                        .map(|p| {
                            let base = page.base_of(comps, p.col).unwrap_or(0);
                            // Packed row formats only carry fixed-width codecs
                            // (packed_equivalent demotion), so code_base is 0.
                            rewrite(p, &comps[p.col], base, 0)
                        })
                        .collect()
                } else {
                    vec![None; self.predicates.len()]
                };
                let mut vec_evals = vec![0u64; self.predicates.len()];
                let mut cur = page.cursor(&schema, comps);
                let delta_cols = comps
                    .iter()
                    .filter(|c| matches!(c.codec, Codec::ForDelta { .. }))
                    .count();
                let mut scratch = std::mem::take(&mut self.scratch);
                while cur.advance()? {
                    if self.row_ordinal < self.range.0 || self.row_ordinal >= self.range.1 {
                        // Out-of-range rows on a shared boundary page: the
                        // cursor still decodes past them (FOR-delta is
                        // sequential) but they are not visited.
                        self.row_ordinal += 1;
                        continue;
                    }
                    visited += 1;
                    let mut pass = true;
                    for (pi, pred) in self.predicates.iter().enumerate() {
                        if let Some(cp) = &code_preds[pi] {
                            vec_evals[pi] += 1;
                            if !cp.eval(cur.field_code(pred.col)?) {
                                pass = false;
                                break;
                            }
                            continue;
                        }
                        pred_evals[pi] += 1;
                        let dt = schema.dtype(pred.col);
                        scratch.clear();
                        cur.field_raw(pred.col, &mut scratch)?;
                        if pred.eval_raw(dt, &scratch) {
                            pred_passes[pi] += 1;
                        } else {
                            pass = false;
                            break;
                        }
                    }
                    if pass {
                        passed_total += 1;
                        for &c in &self.projection {
                            cur.field_raw(c, &mut self.pending)?;
                        }
                        self.pending_pos.push(self.row_ordinal);
                    }
                    self.row_ordinal += 1;
                }
                self.scratch = scratch;
                // Decompression CPU: predicate fields for every tuple (unless
                // evaluated in code space), delta maintenance for every
                // tuple, projected fields for qualifying tuples.
                let mut meter = self.ctx.meter.borrow_mut();
                for (pi, pred) in self.predicates.iter().enumerate() {
                    if code_preds[pi].is_some() {
                        meter.vec_predicate(vec_evals[pi] as f64);
                    } else {
                        meter.decode(comps[pred.col].codec.kind(), visited as f64);
                    }
                }
                meter.decode(CodecKind::ForDelta, (visited * delta_cols as u64) as f64);
                for &c in &self.projection {
                    if !matches!(comps[c].codec, Codec::ForDelta { .. }) {
                        meter.decode(comps[c].codec.kind(), passed_total as f64);
                    }
                }
            }
        }

        debug_assert_eq!(self.pending.len(), (self.pending_pos.len()) * out_width);

        // Common CPU accounting for the page.
        {
            let mut meter = self.ctx.meter.borrow_mut();
            meter.row_iter(visited as f64);
            for (pi, pred) in self.predicates.iter().enumerate() {
                meter.predicate(pred_evals[pi] as f64, pred_passes[pi] as f64);
                let w = schema.dtype(pred.col).width() as f64;
                if dense_l1 {
                    meter.touch_l1_dense(pred_evals[pi] as f64 * w);
                } else {
                    meter.touch_l1(pred_evals[pi] as f64, w);
                }
            }
            meter.project(
                passed_total as f64,
                self.projection.len() as f64,
                passed_total as f64 * self.proj_bytes as f64,
            );
            if dense_l1 {
                meter.touch_l1_dense(passed_total as f64 * self.proj_bytes as f64);
            } else {
                meter.touch_l1(passed_total as f64, self.proj_bytes as f64);
            }
        }
        Ok(())
    }

    /// End-of-scan memory accounting: the scanner's page window streamed
    /// through the memory bus (dense sequential access → hardware
    /// prefetched). A whole-table scan streams the whole file.
    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dropped = self.dropped.total();
        if dropped > 0 {
            self.ctx.disk.borrow_mut().note_dropped_rows(dropped);
        }
        self.ctx.meter.borrow_mut().seq_region(self.window_bytes);
    }
}

impl Operator for RowScanner {
    fn schema(&self) -> &Arc<Schema> {
        &self.out_schema
    }

    fn label(&self) -> String {
        format!("scan[row] {}", self.table.name)
    }

    fn next(&mut self) -> Result<Option<TupleBlock>> {
        if self.done {
            return Ok(None);
        }
        let block_cap = self.ctx.sys.block_tuples;
        while self.pending_remaining() < block_cap {
            if !self.fill_from_next_page()? {
                break;
            }
        }
        if self.pending_remaining() == 0 {
            self.finish();
            return Ok(None);
        }
        let take = self.pending_remaining().min(block_cap);
        let w = self.out_schema.logical_width();
        let mut block = TupleBlock::new(self.out_schema.clone(), take);
        for k in 0..take {
            let idx = self.pending_taken + k;
            block.push_tuple(&self.pending[idx * w..(idx + 1) * w], self.pending_pos[idx])?;
        }
        self.pending_taken += take;
        if self.pending_taken == self.pending_pos.len() {
            self.pending.clear();
            self.pending_pos.clear();
            self.pending_taken = 0;
        }
        {
            let mut meter = self.ctx.meter.borrow_mut();
            meter.block_calls(1.0);
            meter.stream_bytes(block.byte_len() as f64);
        }
        Ok(Some(block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect_rows;
    use rodb_compress::ColumnCompression;
    use rodb_storage::{BuildLayouts, TableBuilder};
    use rodb_types::{Column, Value};

    fn table(n: usize) -> Arc<Table> {
        let s = Arc::new(
            Schema::new(vec![
                Column::int("id"),
                Column::int("val"),
                Column::text("tag", 6),
            ])
            .unwrap(),
        );
        let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::both()).unwrap();
        for i in 0..n {
            b.push_row(&[
                Value::Int(i as i32),
                Value::Int((i % 100) as i32),
                Value::text(["aa", "bb", "cc"][i % 3]),
            ])
            .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn packed_table(n: usize) -> Arc<Table> {
        let s = Arc::new(
            Schema::new(vec![
                Column::int("id"),
                Column::int("val"),
                Column::text("tag", 6),
            ])
            .unwrap(),
        );
        let dict = Arc::new(
            rodb_compress::Dictionary::build(
                rodb_types::DataType::Text(6),
                [Value::text("aa"), Value::text("bb"), Value::text("cc")].iter(),
            )
            .unwrap(),
        );
        let comps = vec![
            ColumnCompression::new(Codec::ForDelta { bits: 2 }, None).unwrap(),
            ColumnCompression::new(Codec::BitPack { bits: 7 }, None).unwrap(),
            ColumnCompression::new(Codec::Dict { bits: 2 }, Some(dict)).unwrap(),
        ];
        let mut b =
            TableBuilder::with_compression("tz", s, 4096, BuildLayouts::both(), comps).unwrap();
        for i in 0..n {
            b.push_row(&[
                Value::Int(i as i32),
                Value::Int((i % 100) as i32),
                Value::text(["aa", "bb", "cc"][i % 3]),
            ])
            .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn full_scan_projects_everything() {
        let t = table(1000);
        let ctx = ExecContext::default_ctx();
        let mut s = RowScanner::new(t, vec![0, 1, 2], vec![], &ctx).unwrap();
        let rows = collect_rows(&mut s).unwrap();
        assert_eq!(rows.len(), 1000);
        assert_eq!(rows[999][0], Value::Int(999));
        assert_eq!(rows[7][2].to_string(), "bb");
    }

    #[test]
    fn predicate_filters_and_positions_track_source() {
        let t = table(1000);
        let ctx = ExecContext::default_ctx();
        let mut s = RowScanner::new(t, vec![1], vec![Predicate::lt(1, 10)], &ctx).unwrap();
        let mut total = 0;
        while let Some(b) = s.next().unwrap() {
            for i in 0..b.count() {
                assert!(b.int(i, 0) < 10);
                let pos = b.position(i).unwrap();
                assert!(pos % 100 < 10);
            }
            total += b.count();
        }
        assert_eq!(total, 100); // 10% of 1000
    }

    #[test]
    fn packed_rows_scan_like_plain_rows() {
        let plain = table(3000);
        let packed = packed_table(3000);
        for preds in [
            vec![],
            vec![Predicate::lt(1, 10)],
            vec![Predicate::eq(2, "bb")],
        ] {
            for proj in [vec![0, 1, 2], vec![2, 0], vec![1]] {
                let ctx = ExecContext::default_ctx();
                let mut a =
                    RowScanner::new(plain.clone(), proj.clone(), preds.clone(), &ctx).unwrap();
                let ctx2 = ExecContext::default_ctx();
                let mut b =
                    RowScanner::new(packed.clone(), proj.clone(), preds.clone(), &ctx2).unwrap();
                assert_eq!(
                    collect_rows(&mut a).unwrap(),
                    collect_rows(&mut b).unwrap(),
                    "proj {proj:?} preds {preds:?}"
                );
            }
        }
    }

    #[test]
    fn packed_rows_read_fewer_bytes_but_cost_more_cpu() {
        let plain = table(20_000);
        let packed = packed_table(20_000);
        let run = |t: &Arc<Table>| {
            let ctx = ExecContext::default_ctx();
            let mut s = RowScanner::new(t.clone(), vec![0, 1, 2], vec![Predicate::lt(1, 10)], &ctx)
                .unwrap();
            while s.next().unwrap().is_some() {}
            let bytes = ctx.disk.borrow().stats().bytes_read;
            let uops = ctx.meter.borrow().counters().uops;
            (bytes, uops)
        };
        let (plain_bytes, plain_uops) = run(&plain);
        let (packed_bytes, packed_uops) = run(&packed);
        assert!(packed_bytes < plain_bytes / 2.0);
        assert!(packed_uops > plain_uops); // decompression cost (§4.4)
    }

    #[test]
    fn packed_fast_path_matches_and_cuts_cpu() {
        let packed = packed_table(5000);
        let fast_ctx = || {
            ExecContext::new(
                rodb_types::HardwareConfig::default(),
                rodb_types::SystemConfig::default().with_scan_fast_path(true),
                1.0,
            )
            .unwrap()
        };
        for preds in [
            vec![Predicate::lt(1, 10)],
            vec![Predicate::eq(2, "bb")],
            vec![Predicate::ge(1, 97), Predicate::eq(2, "cc")],
            vec![Predicate::eq(0, 1234)], // FOR-delta: not rewritable
        ] {
            let ctx = ExecContext::default_ctx();
            let mut slow =
                RowScanner::new(packed.clone(), vec![0, 1, 2], preds.clone(), &ctx).unwrap();
            let slow_rows = collect_rows(&mut slow).unwrap();
            let fctx = fast_ctx();
            let mut fast =
                RowScanner::new(packed.clone(), vec![0, 1, 2], preds.clone(), &fctx).unwrap();
            let fast_rows = collect_rows(&mut fast).unwrap();
            assert_eq!(fast_rows, slow_rows, "{preds:?}");
        }
        // A rewritable predicate skips its per-tuple decode + interpreted
        // evaluation: modeled CPU must drop.
        let run = |fast: bool| {
            let ctx = if fast {
                fast_ctx()
            } else {
                ExecContext::default_ctx()
            };
            let mut s =
                RowScanner::new(packed.clone(), vec![1], vec![Predicate::lt(1, 1)], &ctx).unwrap();
            while s.next().unwrap().is_some() {}
            let uops = ctx.meter.borrow().counters().uops;
            uops
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn projection_reorders_columns() {
        let t = table(10);
        let ctx = ExecContext::default_ctx();
        let mut s = RowScanner::new(t, vec![2, 0], vec![], &ctx).unwrap();
        assert_eq!(s.schema().columns()[0].name, "tag");
        assert_eq!(s.schema().columns()[1].name, "id");
        let rows = collect_rows(&mut s).unwrap();
        assert_eq!(rows[3][1], Value::Int(3));
    }

    #[test]
    fn conjunctive_predicates() {
        let t = table(1000);
        let ctx = ExecContext::default_ctx();
        let preds = vec![Predicate::lt(1, 50), Predicate::eq(2, "aa")];
        let mut s = RowScanner::new(t, vec![0], preds, &ctx).unwrap();
        let rows = collect_rows(&mut s).unwrap();
        for r in &rows {
            let id = r[0].as_int().unwrap() as usize;
            assert!(id % 100 < 50 && id.is_multiple_of(3));
        }
        let expected = (0..1000).filter(|i| i % 100 < 50 && i % 3 == 0).count();
        assert_eq!(rows.len(), expected);
    }

    #[test]
    fn io_reads_whole_file_regardless_of_selectivity() {
        let t = table(5000);
        let file_bytes = t.row_storage().unwrap().byte_len() as f64;
        for pred in [vec![], vec![Predicate::lt(1, 1)]] {
            let ctx = ExecContext::default_ctx();
            let mut s = RowScanner::new(t.clone(), vec![0], pred, &ctx).unwrap();
            while s.next().unwrap().is_some() {}
            let stats = *ctx.disk.borrow().stats();
            assert!((stats.bytes_read - file_bytes).abs() < 1.0);
        }
    }

    #[test]
    fn cpu_meter_sees_scan_work() {
        let t = table(2000);
        let ctx = ExecContext::default_ctx();
        let mut s =
            RowScanner::new(t.clone(), vec![0, 1], vec![Predicate::lt(1, 10)], &ctx).unwrap();
        while s.next().unwrap().is_some() {}
        let c = *ctx.meter.borrow().counters();
        assert!(c.uops > 0.0);
        let file_bytes = t.row_storage().unwrap().byte_len() as f64;
        assert!(c.seq_bytes >= file_bytes);
        assert!(c.branch_mispredicts > 0.0);
    }

    #[test]
    fn rejects_bad_plans() {
        let t = table(10);
        let ctx = ExecContext::default_ctx();
        assert!(RowScanner::new(t.clone(), vec![], vec![], &ctx).is_err());
        assert!(RowScanner::new(t.clone(), vec![9], vec![], &ctx).is_err());
        assert!(RowScanner::new(t, vec![0], vec![Predicate::lt(9, 1)], &ctx).is_err());
    }

    #[test]
    fn column_only_table_has_no_row_scan() {
        let s = Arc::new(Schema::new(vec![Column::int("a")]).unwrap());
        let mut b = TableBuilder::new("c", s, 4096, BuildLayouts::column_only()).unwrap();
        b.push_row(&[Value::Int(1)]).unwrap();
        let t = Arc::new(b.finish().unwrap());
        let ctx = ExecContext::default_ctx();
        assert!(RowScanner::new(t, vec![0], vec![], &ctx).is_err());
    }
}
