//! In-memory sort operator.
//!
//! Feeds the sort-based aggregation and the merge join when inputs are not
//! already in key order. The read-optimized store is bulk-loaded and usually
//! key-ordered already, so this operator mostly appears in ad-hoc plans.

use std::sync::Arc;

use rodb_types::{Error, Result, Schema};

use crate::block::TupleBlock;
use crate::op::{ExecContext, Operator};

/// Sorts its entire input by one or more columns (ascending, bytewise on the
/// stored representation for text, numeric for int columns).
pub struct Sort {
    child: Box<dyn Operator>,
    ctx: ExecContext,
    keys: Vec<usize>,
    schema: Arc<Schema>,
    /// Materialized + sorted rows, filled on first `next`.
    sorted: Option<Vec<(Vec<u8>, u64)>>,
    emit_idx: usize,
}

impl Sort {
    pub fn new(child: Box<dyn Operator>, keys: Vec<usize>, ctx: &ExecContext) -> Result<Sort> {
        let schema = child.schema().clone();
        for &k in &keys {
            if k >= schema.len() {
                return Err(Error::UnknownColumn(format!("sort key index {k}")));
            }
        }
        if keys.is_empty() {
            return Err(Error::InvalidPlan("sort with no keys".into()));
        }
        Ok(Sort {
            child,
            ctx: ctx.clone(),
            keys,
            schema,
            sorted: None,
            emit_idx: 0,
        })
    }

    fn materialize(&mut self) -> Result<()> {
        let mut rows: Vec<(Vec<u8>, u64)> = Vec::new();
        let mut in_bytes = 0f64;
        while let Some(b) = self.child.next()? {
            for i in 0..b.count() {
                rows.push((b.tuple(i).to_vec(), b.position(i).unwrap_or(0)));
            }
            in_bytes += b.byte_len() as f64;
        }
        let schema = self.schema.clone();
        let keys = self.keys.clone();
        let n = rows.len().max(1) as f64;
        rows.sort_by(|a, b| {
            for &k in &keys {
                let off = schema.offset(k);
                let dt = schema.dtype(k);
                let ord = match dt {
                    rodb_types::DataType::Int => {
                        let av = i32::from_le_bytes(a.0[off..off + 4].try_into().unwrap());
                        let bv = i32::from_le_bytes(b.0[off..off + 4].try_into().unwrap());
                        av.cmp(&bv)
                    }
                    rodb_types::DataType::Long => {
                        let av = i64::from_le_bytes(a.0[off..off + 8].try_into().unwrap());
                        let bv = i64::from_le_bytes(b.0[off..off + 8].try_into().unwrap());
                        av.cmp(&bv)
                    }
                    rodb_types::DataType::Text(w) => a.0[off..off + w].cmp(&b.0[off..off + w]),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        {
            let mut meter = self.ctx.meter.borrow_mut();
            meter.key_compare(n * n.log2().max(1.0));
            // Sorting re-streams the materialized data.
            meter.stream_bytes(2.0 * in_bytes);
        }
        self.sorted = Some(rows);
        Ok(())
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn label(&self) -> String {
        "sort".to_string()
    }

    fn next(&mut self) -> Result<Option<TupleBlock>> {
        if self.sorted.is_none() {
            self.materialize()?;
        }
        let rows = self.sorted.as_ref().expect("materialized above");
        if self.emit_idx >= rows.len() {
            return Ok(None);
        }
        let cap = self.ctx.sys.block_tuples;
        let mut block = TupleBlock::new(self.schema.clone(), cap);
        while self.emit_idx < rows.len() && block.count() < cap {
            let (raw, pos) = &self.sorted.as_ref().unwrap()[self.emit_idx];
            block.push_tuple(raw, *pos)?;
            self.emit_idx += 1;
        }
        self.ctx.meter.borrow_mut().block_calls(1.0);
        Ok(Some(block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect_rows;
    use crate::predicate::Predicate;
    use crate::scan_row::RowScanner;
    use rodb_storage::{BuildLayouts, TableBuilder};
    use rodb_types::{Column, Value};

    fn scan(n: usize, ctx: &ExecContext) -> Box<dyn Operator> {
        let s = Arc::new(Schema::new(vec![Column::int("k"), Column::text("t", 4)]).unwrap());
        let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::row_only()).unwrap();
        for i in 0..n {
            // Reverse order so sorting has work to do.
            b.push_row(&[
                Value::Int((n - i) as i32),
                Value::text(["dd", "cc", "bb", "aa"][i % 4]),
            ])
            .unwrap();
        }
        let t = Arc::new(b.finish().unwrap());
        Box::new(RowScanner::new(t, vec![0, 1], vec![], ctx).unwrap())
    }

    #[test]
    fn sorts_ints_ascending() {
        let ctx = ExecContext::default_ctx();
        let mut s = Sort::new(scan(500, &ctx), vec![0], &ctx).unwrap();
        let rows = collect_rows(&mut s).unwrap();
        assert_eq!(rows.len(), 500);
        for w in rows.windows(2) {
            assert!(w[0][0] <= w[1][0]);
        }
        assert_eq!(rows[0][0], Value::Int(1));
    }

    #[test]
    fn sorts_text_then_int() {
        let ctx = ExecContext::default_ctx();
        let mut s = Sort::new(scan(100, &ctx), vec![1, 0], &ctx).unwrap();
        let rows = collect_rows(&mut s).unwrap();
        for w in rows.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let ta = a[1].to_string();
            let tb = b[1].to_string();
            assert!(ta <= tb);
            if ta == tb {
                assert!(a[0] <= b[0]);
            }
        }
    }

    #[test]
    fn empty_input() {
        let ctx = ExecContext::default_ctx();
        let s = Arc::new(Schema::new(vec![Column::int("k")]).unwrap());
        let mut b = TableBuilder::new("e", s, 4096, BuildLayouts::row_only()).unwrap();
        b.push_row(&[Value::Int(1)]).unwrap();
        let t = Arc::new(b.finish().unwrap());
        let scan = RowScanner::new(t, vec![0], vec![Predicate::lt(0, 0)], &ctx).unwrap();
        let mut sort = Sort::new(Box::new(scan), vec![0], &ctx).unwrap();
        assert!(sort.next().unwrap().is_none());
    }

    #[test]
    fn validates_keys() {
        let ctx = ExecContext::default_ctx();
        assert!(Sort::new(scan(10, &ctx), vec![], &ctx).is_err());
        assert!(Sort::new(scan(10, &ctx), vec![5], &ctx).is_err());
    }
}
