//! Scan sharing (§2.1.1) — an extension beyond the paper's measurements.
//!
//! "When multiple concurrent queries scan the same table, often it pays off
//! to employ a single scanner and deliver data to multiple queries off a
//! single reading stream (scan sharing). Teradata, RedBrick, and SQL Server
//! are among the commercial products that have been reported to employ this
//! optimization." The paper leaves it unexamined as orthogonal to layout;
//! we implement the row-store version so the orthogonality can be checked:
//! one disk pass, one tuple-iteration pass, per-query predicates and
//! projections applied to the shared stream.

use std::sync::Arc;

use rodb_io::FileStream;
use rodb_storage::{RowFormat, RowPage, Table};
use rodb_types::{Error, Result, Schema, Value};

use crate::op::ExecContext;
use crate::predicate::Predicate;

/// One consumer of the shared stream.
#[derive(Debug, Clone)]
pub struct SharedScanQuery {
    pub projection: Vec<usize>,
    pub predicates: Vec<Predicate>,
}

impl SharedScanQuery {
    pub fn new(projection: Vec<usize>, predicates: Vec<Predicate>) -> SharedScanQuery {
        SharedScanQuery {
            projection,
            predicates,
        }
    }
}

/// Per-query output of a shared scan.
#[derive(Debug, Clone)]
pub struct SharedScanOutput {
    pub schema: Arc<Schema>,
    pub rows: Vec<Vec<Value>>,
}

/// Run every query off a single sequential pass over the table's (plain)
/// row representation. Returns per-query results in input order; I/O and
/// per-tuple iteration are charged once, predicate/projection work once per
/// query.
pub fn shared_row_scan(
    table: &Arc<Table>,
    queries: &[SharedScanQuery],
    ctx: &ExecContext,
) -> Result<Vec<SharedScanOutput>> {
    if queries.is_empty() {
        return Err(Error::InvalidPlan("shared scan with no queries".into()));
    }
    let rs = table.row_storage()?;
    let stored_width = match &rs.format {
        RowFormat::Plain { stored_width } => *stored_width,
        other => {
            let name = match other {
                RowFormat::Plain { .. } => unreachable!(),
                RowFormat::Packed { .. } => "bit-packed (-Z)",
                RowFormat::Pax => "PAX",
            };
            return Err(Error::InvalidPlan(format!(
                "shared_row_scan supports plain row files only, table stores {name} rows; \
                 use the concurrent query service (SharedCursor / QueryService), which \
                 shares scans over the Row and Column layouts in any stored format"
            )));
        }
    };
    let schema = table.schema.clone();
    let mut outputs = Vec::with_capacity(queries.len());
    for q in queries {
        if q.projection.is_empty() {
            return Err(Error::InvalidPlan("empty projection".into()));
        }
        for p in &q.predicates {
            p.validate(&schema)?;
        }
        outputs.push(SharedScanOutput {
            schema: Arc::new(schema.project(&q.projection)?),
            rows: Vec::new(),
        });
    }

    let mut stream = FileStream::new(
        ctx.disk.clone(),
        ctx.next_file_id(),
        rs.file.clone(),
        rs.page_size,
    )?;
    ctx.disk.borrow_mut().set_interleave(1);

    let mut visited = 0u64;
    let mut evals = vec![0u64; queries.len()];
    let mut passes = vec![0u64; queries.len()];
    while let Some(pref) = stream.next_page() {
        let page = RowPage::new(pref.bytes(), stored_width)?;
        for raw in page.tuples() {
            visited += 1;
            for (qi, q) in queries.iter().enumerate() {
                let mut pass = true;
                for p in &q.predicates {
                    evals[qi] += 1;
                    let dt = schema.dtype(p.col);
                    let off = schema.offset(p.col);
                    if p.eval_raw(dt, &raw[off..off + dt.width()]) {
                        passes[qi] += 1;
                    } else {
                        pass = false;
                        break;
                    }
                }
                if pass {
                    let row = q
                        .projection
                        .iter()
                        .map(|&c| rodb_types::tuple::decode_field(&schema, raw, c))
                        .collect::<Result<Vec<_>>>()?;
                    outputs[qi].rows.push(row);
                }
            }
        }
    }

    // CPU accounting: the tuple loop runs once; each query pays its own
    // predicate and projection work. Kernel-side work is settled here since
    // a shared scan completes outside the run_to_completion() path.
    ctx.settle_io_kernel_work();
    {
        let mut meter = ctx.meter.borrow_mut();
        meter.row_iter(visited as f64);
        meter.seq_region(rs.byte_len() as f64);
        for (qi, q) in queries.iter().enumerate() {
            meter.predicate(evals[qi] as f64, passes[qi] as f64);
            let proj_bytes = schema.selected_bytes(&q.projection) as f64;
            let out = outputs[qi].rows.len() as f64;
            meter.project(out, q.projection.len() as f64, out * proj_bytes);
            meter.touch_l1(out, proj_bytes);
        }
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect_rows, Operator};
    use crate::scan_row::RowScanner;
    use rodb_storage::{BuildLayouts, TableBuilder};
    use rodb_types::Column;

    fn table(n: usize) -> Arc<Table> {
        let s = Arc::new(
            Schema::new(vec![
                Column::int("a"),
                Column::int("b"),
                Column::text("t", 4),
            ])
            .unwrap(),
        );
        let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::both()).unwrap();
        for i in 0..n {
            b.push_row(&[
                Value::Int(i as i32),
                Value::Int((i % 50) as i32),
                Value::text(["aa", "bb"][i % 2]),
            ])
            .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn queries() -> Vec<SharedScanQuery> {
        vec![
            SharedScanQuery::new(vec![0], vec![Predicate::lt(1, 5)]),
            SharedScanQuery::new(vec![2, 1], vec![Predicate::eq(2, "aa")]),
            SharedScanQuery::new(vec![0, 1, 2], vec![]),
        ]
    }

    #[test]
    fn results_match_independent_scans() {
        let t = table(3000);
        let ctx = ExecContext::default_ctx();
        let shared = shared_row_scan(&t, &queries(), &ctx).unwrap();
        for (q, out) in queries().iter().zip(&shared) {
            let ctx2 = ExecContext::default_ctx();
            let mut solo =
                RowScanner::new(t.clone(), q.projection.clone(), q.predicates.clone(), &ctx2)
                    .unwrap();
            assert_eq!(out.rows, collect_rows(&mut solo).unwrap());
        }
    }

    #[test]
    fn io_is_one_pass_regardless_of_query_count() {
        let t = table(3000);
        let file_bytes = t.row_storage().unwrap().byte_len() as f64;
        for nq in [1usize, 3] {
            let ctx = ExecContext::default_ctx();
            let qs: Vec<_> = queries().into_iter().cycle().take(nq).collect();
            shared_row_scan(&t, &qs, &ctx).unwrap();
            let read = ctx.disk.borrow().stats().bytes_read;
            assert!((read - file_bytes).abs() < 1.0, "nq={nq}: read {read}");
        }
    }

    #[test]
    fn cpu_amortizes_tuple_iteration() {
        let t = table(5000);
        // Shared: one iteration pass + 3 queries' predicate work.
        let ctx = ExecContext::default_ctx();
        shared_row_scan(&t, &queries(), &ctx).unwrap();
        let shared_uops = ctx.meter.borrow().counters().uops;
        // Independent: three full scans.
        let mut solo_uops = 0.0;
        for q in queries() {
            let ctx2 = ExecContext::default_ctx();
            let mut s = RowScanner::new(t.clone(), q.projection, q.predicates, &ctx2).unwrap();
            while s.next().unwrap().is_some() {}
            solo_uops += ctx2.meter.borrow().counters().uops;
        }
        assert!(
            shared_uops < 0.75 * solo_uops,
            "shared {shared_uops} vs solo {solo_uops}"
        );
    }

    #[test]
    fn non_plain_format_error_names_format_and_service() {
        let s = Arc::new(Schema::new(vec![Column::int("a"), Column::int("b")]).unwrap());
        let mut b = TableBuilder::new_pax("pax", s, 4096, BuildLayouts::row_only()).unwrap();
        for i in 0..100 {
            b.push_row(&[Value::Int(i), Value::Int(i % 7)]).unwrap();
        }
        let t = Arc::new(b.finish().unwrap());
        let ctx = ExecContext::default_ctx();
        let err = shared_row_scan(&t, &[SharedScanQuery::new(vec![0], vec![])], &ctx)
            .err()
            .unwrap();
        let msg = format!("{err}");
        assert!(msg.contains("PAX"), "{msg}");
        assert!(msg.contains("query service"), "{msg}");
    }

    #[test]
    fn validation() {
        let t = table(10);
        let ctx = ExecContext::default_ctx();
        assert!(shared_row_scan(&t, &[], &ctx).is_err());
        assert!(shared_row_scan(&t, &[SharedScanQuery::new(vec![], vec![])], &ctx).is_err());
        assert!(shared_row_scan(
            &t,
            &[SharedScanQuery::new(vec![0], vec![Predicate::lt(9, 1)])],
            &ctx
        )
        .is_err());
    }
}
