//! General morsel task scheduler: one worker pool executing tasks from
//! *many* in-flight queries.
//!
//! [`crate::par::ParallelExec`] is the single-query face of this module: it
//! submits one [`QueryJob`] and unwraps the one [`JobOutcome`]. The
//! concurrent query service submits a *batch* of jobs — one per query
//! attached to a shared scan cursor segment — and the same pool interleaves
//! their tasks round-robin, so every worker owns morsels from multiple
//! queries at once.
//!
//! Determinism: each task is tagged with its position in the interleaved
//! task list, and every job's outcomes are merged in morsel order after the
//! pool joins — exactly the [`crate::par`] merge. Which worker ran which
//! task never affects any merged result, so reports and rows are identical
//! across worker counts.

use std::sync::atomic::{AtomicUsize, Ordering};

use rodb_cpu::CpuBreakdown;
use rodb_io::IoStats;
use rodb_trace::{QueryTrace, SpanKind};
use rodb_types::{Error, HardwareConfig, Result, SystemConfig, Value};

use crate::agg::{merge_partials, AggPartial, Aggregate};
use crate::exec::{RunReport, DEFAULT_OVERLAP_LOSS};
use crate::op::{drain, ExecContext, Operator};
use crate::par::AggPlan;
use crate::plan::ScanSpec;
use crate::traced::{apply_report, finish_query_trace, record_block};

/// Morsels per worker thread: small enough that the queue load-balances,
/// large enough that per-morsel setup stays negligible.
pub(crate) const MORSELS_PER_THREAD: usize = 4;

/// Lower bound on morsel size. Every morsel pays fixed costs — a fresh
/// sequential run per column file (a seek plus its kernel switch charge)
/// and context setup — so slicing a small table into `threads × 4` crumbs
/// makes the parallel run *more* expensive than the serial one. Below this
/// many rows per morsel we create fewer morsels (never fewer than
/// `threads`, so available cores still all engage).
pub(crate) const MIN_MORSEL_ROWS: u64 = 32_768;

/// One query's work order for the scheduler. A job with no `row_range` on
/// its spec is split into page-aligned morsels like a standalone parallel
/// scan; a job whose spec carries a range (a shared-cursor segment) is a
/// single task.
#[derive(Debug, Clone)]
pub struct QueryJob {
    pub spec: ScanSpec,
    pub agg: Option<AggPlan>,
    pub hw: HardwareConfig,
    pub sys: SystemConfig,
    pub row_scale: f64,
    pub competing_scans: usize,
    /// Materialize result rows (vs measurement-only drain).
    pub collect: bool,
    /// When aggregating: `true` merges partials and emits final rows (the
    /// single-query path); `false` returns the merged [`AggPartial`]
    /// unemitted, for callers that keep folding across job batches (the
    /// shared-cursor service does, one batch per segment).
    pub emit: bool,
    /// Trace every task and merge the span trees.
    pub trace: bool,
}

impl QueryJob {
    pub fn new(
        spec: ScanSpec,
        agg: Option<AggPlan>,
        hw: HardwareConfig,
        sys: SystemConfig,
    ) -> QueryJob {
        QueryJob {
            spec,
            agg,
            hw,
            sys,
            row_scale: 1.0,
            competing_scans: 0,
            collect: false,
            emit: true,
            trace: false,
        }
    }
}

/// The per-job result of a scheduler batch, merged deterministically in
/// morsel order (field semantics match [`crate::par::ParallelOutcome`]).
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Merged report on the simulated clock. `report.cpu` is the *sum* of
    /// all task CPU (total work); `report.elapsed_s` uses the parallel
    /// critical path.
    pub report: RunReport,
    pub rows: Vec<Vec<Value>>,
    /// The merged unemitted partial (aggregating jobs with `emit: false`).
    pub partial: Option<AggPartial>,
    /// Modelled CPU critical path in seconds across the worker pool.
    pub cpu_crit_s: f64,
    /// CPU seconds of the job's largest single task (the indivisible unit
    /// a caller scheduling many jobs needs for its own makespan bound).
    pub max_task_cpu_s: f64,
    /// Tasks (morsels) this job split into.
    pub tasks: usize,
    /// Merged per-task span trace (only when the job asked for tracing).
    pub trace: Option<QueryTrace>,
}

/// Everything a task execution sends back across the thread boundary
/// (plain data — the `Rc`-based context stays inside the worker).
struct TaskOutcome {
    rows: Vec<Vec<Value>>,
    nrows: u64,
    blocks: u64,
    io: IoStats,
    cpu: CpuBreakdown,
    partial: Option<AggPartial>,
    trace: Option<QueryTrace>,
}

/// The worker pool. `workers` bounds concurrency *and* is the thread count
/// the merged accounting models (head-switch seek recharge, CPU critical
/// path) — the same convention as [`crate::par::ParallelExec::threads`].
#[derive(Debug, Clone, Copy)]
pub struct TaskScheduler {
    pub workers: usize,
}

impl TaskScheduler {
    pub fn new(workers: usize) -> TaskScheduler {
        TaskScheduler { workers }
    }

    /// Execute a batch of jobs on one worker pool and merge each job's
    /// tasks deterministically. Tasks are interleaved round-robin across
    /// jobs (task 0 of every job, then task 1, …), so whenever the batch
    /// holds more than one query, every worker serves several queries over
    /// the batch's lifetime rather than draining them one at a time.
    pub fn run_jobs(&self, jobs: &[QueryJob]) -> Result<Vec<JobOutcome>> {
        if self.workers == 0 {
            return Err(Error::InvalidPlan(
                "parallel execution with 0 threads".into(),
            ));
        }
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        // Per-job morsel lists, then one interleaved task list.
        let morsel_lists: Vec<Vec<(u64, u64)>> =
            jobs.iter().map(|j| job_tasks(j, self.workers)).collect();
        let mut tasks: Vec<(usize, usize)> = Vec::new(); // (job, morsel)
        let deepest = morsel_lists.iter().map(Vec::len).max().unwrap_or(0);
        for wave in 0..deepest {
            for (j, list) in morsel_lists.iter().enumerate() {
                if wave < list.len() {
                    tasks.push((j, wave));
                }
            }
        }

        // Pool: workers pull task-list indices until the queue drains,
        // tagging every outcome so the merge below restores morsel order
        // regardless of who ran what.
        let queue = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, TaskOutcome)> = Vec::with_capacity(tasks.len());
        let pool = self.workers.min(tasks.len()).max(1);
        rodb_trace::MetricsRegistry::counter_add("sched.batches", 1.0);
        rodb_trace::MetricsRegistry::counter_add("sched.tasks", tasks.len() as f64);
        rodb_trace::MetricsRegistry::gauge_set("sched.queue_depth", tasks.len() as f64);
        rodb_trace::MetricsRegistry::gauge_set("sched.workers_engaged", pool as f64);
        rodb_trace::MetricsRegistry::gauge_set(
            "sched.worker_occupancy",
            pool as f64 / self.workers as f64,
        );
        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::with_capacity(pool);
            for _ in 0..pool {
                let queue = &queue;
                let tasks = &tasks;
                let morsel_lists = &morsel_lists;
                handles.push(scope.spawn(move || -> Result<Vec<(usize, TaskOutcome)>> {
                    let mut mine = Vec::new();
                    loop {
                        let idx = queue.fetch_add(1, Ordering::Relaxed);
                        let Some(&(j, m)) = tasks.get(idx) else { break };
                        let out = run_task(&jobs[j], morsel_lists[j][m])?;
                        mine.push((idx, out));
                    }
                    Ok(mine)
                }));
            }
            for h in handles {
                let mine = h.join().expect("scheduler worker panicked")?;
                tagged.extend(mine);
            }
            Ok(())
        })?;
        tagged.sort_by_key(|(idx, _)| *idx);

        // Regroup per job. Tasks of one job appear in morsel order within
        // the interleaved list, so a stable partition preserves it.
        let mut per_job: Vec<Vec<TaskOutcome>> = (0..jobs.len()).map(|_| Vec::new()).collect();
        for ((j, _), (_, out)) in tasks.iter().zip(tagged) {
            per_job[*j].push(out);
        }
        jobs.iter()
            .zip(per_job)
            .map(|(job, outs)| self.merge_job(job, outs))
            .collect()
    }

    /// The deterministic per-job merge (identical to the historical
    /// single-query `ParallelExec` merge).
    fn merge_job(&self, job: &QueryJob, mut outcomes: Vec<TaskOutcome>) -> Result<JobOutcome> {
        let ntasks = outcomes.len();
        // Per-task traces, in morsel order (matching the accounting merge).
        let traces: Vec<QueryTrace> = outcomes.iter_mut().filter_map(|o| o.trace.take()).collect();

        let per_io: Vec<IoStats> = outcomes.iter().map(|o| o.io).collect();
        let merged_io = rodb_io::merge_parallel(&per_io, self.workers, job.hw.seek_s);
        // Workers share one array: transfer/seek time serializes, plus the
        // head-switch seeks merge_parallel charged on top — both of which
        // the merged counters carry, so disk seconds derive from them.
        let io_s = merged_io.total_s();

        let mut cpu = CpuBreakdown::default();
        let mut max_task_cpu = 0.0f64;
        for o in &outcomes {
            cpu.add(&o.cpu);
            max_task_cpu = max_task_cpu.max(o.cpu.total());
        }
        // Makespan lower bound over any task→worker assignment.
        let mut cpu_crit = (cpu.total() / self.workers as f64).max(max_task_cpu);

        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut nrows = 0u64;
        let mut blocks = 0u64;
        let mut partial = None;
        match &job.agg {
            None => {
                for mut o in outcomes {
                    nrows += o.nrows;
                    blocks += o.blocks;
                    rows.append(&mut o.rows);
                }
            }
            Some(plan) => {
                let partials: Vec<AggPartial> =
                    outcomes.into_iter().filter_map(|o| o.partial).collect();
                let merged = merge_partials(partials)?;
                if job.emit {
                    // Final merge + emission is a serial tail on one core.
                    let (r, n, b, tail) = emit_aggregate(
                        &job.spec,
                        plan,
                        &job.hw,
                        &job.sys,
                        job.row_scale,
                        merged,
                        job.collect,
                    )?;
                    rows = r;
                    nrows = n;
                    blocks += b;
                    cpu_crit += tail.total();
                    cpu.add(&tail);
                } else {
                    partial = Some(merged);
                }
            }
        }

        let overlapped = io_s.min(cpu_crit);
        let elapsed_s = io_s.max(cpu_crit) + DEFAULT_OVERLAP_LOSS * overlapped;
        let report = RunReport {
            rows: nrows,
            blocks,
            io: merged_io,
            cpu,
            elapsed_s,
        };
        // Merge the span trees the same way the accounting merged, then pin
        // the merged root to the final report (which additionally carries
        // the head-switch seek recharge and the serial aggregation tail).
        let trace = QueryTrace::merge_morsels(&traces).map(|mut t| {
            apply_report(&mut t, &report);
            t
        });
        Ok(JobOutcome {
            report,
            rows,
            partial,
            cpu_crit_s: cpu_crit,
            max_task_cpu_s: max_task_cpu,
            tasks: ntasks,
            trace,
        })
    }
}

/// The task list of one job: its explicit segment range, or the standard
/// page-aligned morsel split of the whole table.
fn job_tasks(job: &QueryJob, workers: usize) -> Vec<(u64, u64)> {
    if let Some((start, end)) = job.spec.row_range {
        return if end > start {
            vec![(start, end)]
        } else {
            Vec::new()
        };
    }
    let by_size = (job.spec.table.row_count / MIN_MORSEL_ROWS).max(1) as usize;
    let want = (workers * MORSELS_PER_THREAD).min(by_size.max(workers));
    job.spec
        .table
        .morsels(want)
        .iter()
        .map(|m| (m.start, m.end))
        .collect()
}

/// Merge + emit an aggregating job's final rows from its folded partial
/// (the serial tail of a parallel aggregation, also used by the shared
/// cursor at query completion). Returns `(rows, nrows, blocks, tail_cpu)`.
pub fn emit_aggregate(
    spec: &ScanSpec,
    plan: &AggPlan,
    hw: &HardwareConfig,
    sys: &SystemConfig,
    row_scale: f64,
    partial: AggPartial,
    collect: bool,
) -> Result<(Vec<Vec<Value>>, u64, u64, CpuBreakdown)> {
    let ctx = ExecContext::new(*hw, *sys, row_scale)?;
    let scan = spec.clone().with_row_range(0, 0).build(&ctx)?;
    let mut emitter = Aggregate::new(scan, plan.group_by, plan.specs.clone(), plan.strategy, &ctx)?;
    emitter.install_partial(partial);
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let nrows;
    let mut blocks = 0u64;
    if collect {
        while let Some(b) = emitter.next()? {
            blocks += 1;
            rows.extend(b.rows()?);
        }
        nrows = rows.len() as u64;
    } else {
        let (r, b) = drain(&mut emitter)?;
        nrows = r;
        blocks = b;
    }
    let tail = ctx.meter.borrow().breakdown(hw).scaled(row_scale);
    Ok((rows, nrows, blocks, tail))
}

/// Run one task (morsel) on its own single-threaded context and detach the
/// `Send`-safe accounting.
fn run_task(job: &QueryJob, range: (u64, u64)) -> Result<TaskOutcome> {
    let mut ctx = ExecContext::new(job.hw, job.sys, job.row_scale)?;
    if job.trace {
        ctx = ctx.with_tracing();
    }
    for _ in 0..job.competing_scans {
        ctx.add_competing_scan();
    }
    let scan = job
        .spec
        .clone()
        .with_row_range(range.0, range.1)
        .build(&ctx)?;
    let mut out = TaskOutcome {
        rows: Vec::new(),
        nrows: 0,
        blocks: 0,
        io: IoStats::default(),
        cpu: CpuBreakdown::default(),
        partial: None,
        trace: None,
    };
    match &job.agg {
        None => {
            let mut op = scan;
            if job.collect {
                while let Some(b) = op.next()? {
                    out.blocks += 1;
                    out.rows.extend(b.rows()?);
                }
                out.nrows = out.rows.len() as u64;
            } else {
                let (r, b) = drain(op.as_mut())?;
                out.nrows = r;
                out.blocks = b;
            }
        }
        Some(plan) => {
            let agg_op =
                Aggregate::new(scan, plan.group_by, plan.specs.clone(), plan.strategy, &ctx)?;
            let label = agg_op.label();
            out.partial = Some(record_block(&ctx, &label, SpanKind::Agg, move || {
                agg_op.into_partial()
            })?);
        }
    }
    ctx.settle_io_kernel_work();
    out.io = *ctx.disk.borrow().stats();
    out.cpu = ctx.meter.borrow().breakdown(&job.hw).scaled(job.row_scale);
    let report = RunReport {
        rows: out.nrows,
        blocks: out.blocks,
        io: out.io,
        cpu: out.cpu,
        elapsed_s: out.io.total_s().max(out.cpu.total()),
    };
    out.trace = finish_query_trace(&ctx, &report);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggSpec, AggStrategy};
    use crate::op::collect_rows;
    use crate::par::ParallelExec;
    use crate::plan::ScanLayout;
    use crate::predicate::Predicate;
    use rodb_storage::{BuildLayouts, Table, TableBuilder};
    use rodb_types::{Column, Schema};
    use std::sync::Arc;

    fn table(n: usize) -> Arc<Table> {
        let s = Arc::new(Schema::new(vec![Column::int("a"), Column::int("b")]).unwrap());
        let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::both()).unwrap();
        for i in 0..n {
            b.push_row(&[
                rodb_types::Value::Int(i as i32),
                rodb_types::Value::Int((i % 9) as i32),
            ])
            .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn job(t: &Arc<Table>, layout: ScanLayout, pred: Option<Predicate>, collect: bool) -> QueryJob {
        let mut spec = ScanSpec::new(t.clone(), layout, vec![0, 1]);
        if let Some(p) = pred {
            spec = spec.with_predicates(vec![p]);
        }
        let mut j = QueryJob::new(
            spec,
            None,
            HardwareConfig::default(),
            SystemConfig::default(),
        );
        j.collect = collect;
        j
    }

    #[test]
    fn batch_of_jobs_matches_each_solo_run() {
        let t = table(9_000);
        let jobs = vec![
            job(&t, ScanLayout::Row, Some(Predicate::lt(1, 4)), true),
            job(&t, ScanLayout::Column, None, true),
            job(&t, ScanLayout::Column, Some(Predicate::eq(0, 7)), true),
        ];
        let batch = TaskScheduler::new(3).run_jobs(&jobs).unwrap();
        assert_eq!(batch.len(), jobs.len());
        for (j, out) in jobs.iter().zip(&batch) {
            let ctx = ExecContext::default_ctx();
            let mut solo = j.spec.clone().build(&ctx).unwrap();
            assert_eq!(out.rows, collect_rows(&mut solo).unwrap());
        }
    }

    #[test]
    fn outcomes_are_identical_across_worker_counts() {
        let t = table(7_000);
        let mut agg_job = job(&t, ScanLayout::Column, Some(Predicate::lt(0, 5_000)), true);
        agg_job.agg = Some(AggPlan {
            group_by: Some(1),
            specs: vec![AggSpec::count(), AggSpec::sum(0)],
            strategy: AggStrategy::Hash,
        });
        let jobs = vec![
            job(&t, ScanLayout::Row, Some(Predicate::lt(1, 4)), true),
            agg_job,
        ];
        let one = TaskScheduler::new(1).run_jobs(&jobs).unwrap();
        let four = TaskScheduler::new(4).run_jobs(&jobs).unwrap();
        for (a, b) in one.iter().zip(&four) {
            // Results are identical across worker counts; accounting may
            // differ because the morsel split scales with the pool (same
            // convention as the single-query parallel executor).
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.report.rows, b.report.rows);
        }
        // At a fixed worker count the whole outcome is bit-identical run
        // to run, regardless of how workers interleaved.
        let again = TaskScheduler::new(4).run_jobs(&jobs).unwrap();
        for (a, b) in four.iter().zip(&again) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.report.io, b.report.io);
            assert_eq!(a.report.elapsed_s, b.report.elapsed_s);
            assert_eq!(a.cpu_crit_s, b.cpu_crit_s);
        }
    }

    #[test]
    fn single_job_is_bit_identical_to_parallel_exec() {
        let t = table(12_000);
        let spec = ScanSpec::new(t.clone(), ScanLayout::Column, vec![0, 1])
            .with_predicates(vec![Predicate::lt(1, 6)]);
        let hw = HardwareConfig::default();
        let sys = SystemConfig::default();
        let via_par = ParallelExec::new(3)
            .run_collect(&spec, None, &hw, &sys, 1.0, 0)
            .unwrap();
        let mut j = QueryJob::new(spec, None, hw, sys);
        j.collect = true;
        let via_sched = TaskScheduler::new(3).run_jobs(&[j]).unwrap().pop().unwrap();
        assert_eq!(via_par.rows, via_sched.rows);
        assert_eq!(via_par.report.elapsed_s, via_sched.report.elapsed_s);
        assert_eq!(via_par.report.io, via_sched.report.io);
        assert_eq!(via_par.cpu_crit_s, via_sched.cpu_crit_s);
        assert_eq!(via_par.morsels, via_sched.tasks);
    }

    #[test]
    fn unemitted_partials_fold_to_the_emitted_answer() {
        let t = table(6_000);
        let spec = ScanSpec::new(t.clone(), ScanLayout::Row, vec![0, 1]);
        let plan = AggPlan {
            group_by: Some(1),
            specs: vec![AggSpec::count()],
            strategy: AggStrategy::Hash,
        };
        let hw = HardwareConfig::default();
        let sys = SystemConfig::default();
        // Split the table into two explicit segment jobs, emit: false.
        let mid = 3_000u64;
        let mk = |s: u64, e: u64| {
            let mut j = QueryJob::new(
                spec.clone().with_row_range(s, e),
                Some(plan.clone()),
                hw,
                sys,
            );
            j.emit = false;
            j
        };
        let outs = TaskScheduler::new(2)
            .run_jobs(&[mk(0, mid), mk(mid, 6_000)])
            .unwrap();
        let partials: Vec<AggPartial> = outs.into_iter().map(|o| o.partial.unwrap()).collect();
        let merged = merge_partials(partials).unwrap();
        let (rows, ..) = emit_aggregate(&spec, &plan, &hw, &sys, 1.0, merged, true).unwrap();
        // Reference: the ordinary single-query parallel path.
        let want = ParallelExec::new(2)
            .run_collect(&spec, Some(&plan), &hw, &sys, 1.0, 0)
            .unwrap();
        assert_eq!(rows, want.rows);
    }

    #[test]
    fn zero_workers_rejected_empty_batch_ok() {
        let t = table(10);
        assert!(TaskScheduler::new(0)
            .run_jobs(&[job(&t, ScanLayout::Row, None, false)])
            .is_err());
        assert!(TaskScheduler::new(2).run_jobs(&[]).unwrap().is_empty());
    }
}
