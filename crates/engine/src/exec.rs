//! Query execution driver and its report.
//!
//! The paper's systems "overlap I/O with computation" (§2.2.3): total elapsed
//! time is the larger of simulated disk time and modelled CPU time; with the
//! paper's note on Figure 9 that CPU-bound compressed runs show "imperfect
//! overlap", a configurable serialization fraction exposes that effect.

use rodb_cpu::CpuBreakdown;
use rodb_io::IoStats;
use rodb_types::Result;

use crate::op::{ExecContext, Operator};

/// Everything one execution produced and cost.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Output rows (actual, unscaled).
    pub rows: u64,
    /// Output blocks.
    pub blocks: u64,
    /// Disk-side counters (bytes are virtual — paper-scale).
    pub io: IoStats,
    /// Modelled CPU breakdown (virtual — scaled by the context's row scale).
    pub cpu: CpuBreakdown,
    /// End-to-end elapsed seconds with CPU/I/O overlap.
    pub elapsed_s: f64,
}

impl RunReport {
    /// Simulated disk elapsed seconds (virtual). Derived from the I/O
    /// counters — the disk clock advances by exactly the transfer, seek and
    /// competitor time it accounts in [`IoStats`], so a separate stored
    /// copy could only ever agree or drift.
    pub fn io_s(&self) -> f64 {
        self.io.total_s()
    }

    /// True if the disks, not the CPU, bound this execution.
    pub fn io_bound(&self) -> bool {
        self.io_s() >= self.cpu.total()
    }

    /// Tuples per second at paper scale, given the virtual row count scanned.
    pub fn tuple_rate(&self, virtual_rows: f64) -> f64 {
        if self.elapsed_s > 0.0 {
            virtual_rows / self.elapsed_s
        } else {
            f64::INFINITY
        }
    }
}

/// Fraction of the overlapped portion that serializes anyway (Figure 9's
/// "imperfect overlap of CPU and I/O time"). 0 = perfect overlap.
pub const DEFAULT_OVERLAP_LOSS: f64 = 0.05;

/// Drain `root`, then settle all accounting into a [`RunReport`].
pub fn run_to_completion(root: &mut dyn Operator, ctx: &ExecContext) -> Result<RunReport> {
    let mut rows = 0u64;
    let mut blocks = 0u64;
    while let Some(b) = root.next()? {
        rows += b.count() as u64;
        blocks += 1;
    }

    let scale = ctx.row_scale;
    let io = *ctx.disk.borrow().stats();
    // Kernel-side CPU work mirrors the disk traffic; settlement is
    // idempotent so repeated executions on one context never double-count.
    ctx.settle_io_kernel_work();
    let cpu = ctx.meter.borrow().breakdown(&ctx.hw).scaled(scale);

    let io_s = io.total_s();
    let cpu_s = cpu.total();
    let overlapped = io_s.min(cpu_s);
    let elapsed_s = io_s.max(cpu_s) + DEFAULT_OVERLAP_LOSS * overlapped;

    Ok(RunReport {
        rows,
        blocks,
        io,
        cpu,
        elapsed_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::scan_col::{ColumnScanMode, ColumnScanner};
    use crate::scan_row::RowScanner;
    use rodb_storage::{BuildLayouts, Table, TableBuilder};
    use rodb_types::{Column, Schema, SystemConfig, Value};
    use std::sync::Arc;

    fn table(n: usize) -> Arc<Table> {
        let s = Arc::new(
            Schema::new(vec![
                Column::int("a"),
                Column::int("b"),
                Column::text("c", 20),
            ])
            .unwrap(),
        );
        let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::both()).unwrap();
        for i in 0..n {
            b.push_row(&[
                Value::Int((i % 1000) as i32),
                Value::Int(i as i32),
                Value::text("some filler text"),
            ])
            .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn report_fields_are_consistent() {
        let t = table(10_000);
        let ctx = ExecContext::default_ctx();
        let mut s =
            RowScanner::new(t.clone(), vec![0, 1], vec![Predicate::lt(0, 100)], &ctx).unwrap();
        let r = run_to_completion(&mut s, &ctx).unwrap();
        assert_eq!(r.rows, 1000);
        assert!(r.blocks >= r.rows / 100);
        assert!(r.io.bytes_read > 0.0);
        assert!(r.cpu.total() > 0.0);
        assert!(r.cpu.sys > 0.0);
        assert!(r.elapsed_s >= r.io_s().max(r.cpu.total()) - 1e-12);
        assert!(r.tuple_rate(10_000.0) > 0.0);
    }

    #[test]
    fn io_time_has_one_source_of_truth() {
        // The report's disk seconds are *derived* from the I/O counters and
        // must equal the simulator's own clock: the clock advances by
        // exactly the quantities it accounts.
        let t = table(20_000);
        let ctx = ExecContext::default_ctx();
        let mut s = RowScanner::new(t, vec![0, 1], vec![Predicate::lt(0, 500)], &ctx).unwrap();
        let r = run_to_completion(&mut s, &ctx).unwrap();
        assert_eq!(r.io_s(), r.io.total_s());
        let clock = ctx.disk.borrow().elapsed();
        assert!(
            (r.io_s() - clock).abs() < 1e-9,
            "derived io_s {} vs disk clock {}",
            r.io_s(),
            clock
        );
    }

    #[test]
    fn row_scale_scales_both_meters() {
        let t = table(10_000);
        let run = |scale: f64| {
            let ctx = ExecContext::new(Default::default(), SystemConfig::default(), scale).unwrap();
            let mut s = ColumnScanner::new(
                t.clone(),
                vec![0, 1],
                vec![],
                ColumnScanMode::Pipelined,
                &ctx,
            )
            .unwrap();
            run_to_completion(&mut s, &ctx).unwrap()
        };
        let r1 = run(1.0);
        let r10 = run(10.0);
        // Virtual bytes, transfer time and user-mode CPU scale by ~10×;
        // seek time and the per-switch kernel work are scale-invariant
        // (the burst count matches the virtual file's).
        assert!((r10.io.bytes_read / r1.io.bytes_read - 10.0).abs() < 0.2);
        assert!((r10.io.transfer_s / r1.io.transfer_s - 10.0).abs() < 0.2);
        assert!(r10.io_s() > r1.io_s());
        assert!((r10.cpu.user() / r1.cpu.user() - 10.0).abs() < 0.5);
        assert!(r10.cpu.sys >= r1.cpu.sys);
        // Output rows are actual, not scaled.
        assert_eq!(r1.rows, r10.rows);
    }

    #[test]
    fn io_bound_detection() {
        // The default platform on a plain uncompressed scan is I/O-bound
        // (the paper's Figure 6 configuration).
        let t = table(50_000);
        let ctx = ExecContext::default_ctx();
        let mut s = RowScanner::new(t, vec![0], vec![], &ctx).unwrap();
        let r = run_to_completion(&mut s, &ctx).unwrap();
        assert!(r.io_bound(), "io={} cpu={}", r.io_s(), r.cpu.total());
    }
}
