//! In-memory scan over the WOS tail, and the chain that splices it behind
//! a read-optimized scan.
//!
//! C-Store-style systems answer queries over the union of the
//! read-optimized store and the in-memory staging area. [`MemScan`] is the
//! staging half: a block iterator over owned `Vec<Value>` rows that applies
//! the same predicates and projection as the disk scanners but charges only
//! CPU — the WOS lives in memory, so there is no modeled I/O to pay.
//! [`Chain`] concatenates it after the ROS scan so filters, projections,
//! and aggregates see one uninterrupted stream.

use std::sync::Arc;

use rodb_types::{Result, Schema, Value};

use crate::block::TupleBlock;
use crate::op::{ExecContext, Operator};
use crate::predicate::Predicate;

/// Block iterator over in-memory rows (the snapshot's WOS tail).
pub struct MemScan {
    out_schema: Arc<Schema>,
    ctx: ExecContext,
    rows: Arc<Vec<Vec<Value>>>,
    projection: Vec<usize>,
    predicates: Vec<Predicate>,
    /// Next source row to visit.
    next: usize,
    /// Position offset: tail rows continue the base table's row ordinals so
    /// lineage positions stay globally unique across the chain.
    base_pos: u64,
}

impl MemScan {
    /// A scan of `rows` (full base-schema tuples) projecting `projection`
    /// under `predicates`. `base_pos` is the first position to assign
    /// (usually the ROS row count).
    pub fn new(
        base_schema: &Arc<Schema>,
        rows: Arc<Vec<Vec<Value>>>,
        projection: Vec<usize>,
        predicates: Vec<Predicate>,
        base_pos: u64,
        ctx: &ExecContext,
    ) -> Result<MemScan> {
        let out_schema = Arc::new(base_schema.project(&projection)?);
        for p in &predicates {
            p.validate(base_schema)?;
        }
        Ok(MemScan {
            out_schema,
            ctx: ctx.clone(),
            rows,
            projection,
            predicates,
            next: 0,
            base_pos,
        })
    }
}

impl Operator for MemScan {
    fn schema(&self) -> &Arc<Schema> {
        &self.out_schema
    }

    fn next(&mut self) -> Result<Option<TupleBlock>> {
        if self.next >= self.rows.len() {
            return Ok(None);
        }
        let cap = self.ctx.sys.block_tuples.max(1);
        let mut block = TupleBlock::new(self.out_schema.clone(), cap);
        let mut raw = Vec::with_capacity(self.out_schema.logical_width());
        let mut visited = 0u64;
        let mut evals = 0u64;
        let mut passes = 0u64;
        while block.count() < cap && self.next < self.rows.len() {
            let row = &self.rows[self.next];
            let pos = self.base_pos + self.next as u64;
            self.next += 1;
            visited += 1;
            let mut keep = true;
            for p in &self.predicates {
                evals += 1;
                if !p.eval_value(&row[p.col]) {
                    keep = false;
                    break;
                }
            }
            if !keep {
                continue;
            }
            passes += 1;
            raw.clear();
            for (&c, col) in self.projection.iter().zip(self.out_schema.columns()) {
                row[c].encode_into(col.dtype, &mut raw)?;
            }
            block.push_tuple(&raw, pos)?;
        }
        // Charge the scalar tuple-at-a-time costs the row scanner would pay,
        // minus every I/O-side term: the WOS tail is memory-resident.
        {
            let mut meter = self.ctx.meter.borrow_mut();
            meter.row_iter(visited as f64);
            if !self.predicates.is_empty() {
                meter.predicate(evals as f64, passes as f64);
            }
            meter.project(
                passes as f64,
                self.projection.len() as f64,
                passes as f64 * self.out_schema.logical_width() as f64,
            );
            if block.count() > 0 {
                meter.block_calls(1.0);
                meter.stream_bytes(block.byte_len() as f64);
            }
        }
        if block.is_empty() {
            // Every remaining row failed its predicates.
            return Ok(None);
        }
        Ok(Some(block))
    }

    fn label(&self) -> String {
        format!("memscan[{} rows]", self.rows.len())
    }
}

/// Concatenate two operators with identical output schemas: drain `first`,
/// then `second`.
pub struct Chain {
    first: Box<dyn Operator>,
    second: Box<dyn Operator>,
    on_second: bool,
}

impl Chain {
    pub fn new(first: Box<dyn Operator>, second: Box<dyn Operator>) -> Result<Chain> {
        if first.schema() != second.schema() {
            return Err(rodb_types::Error::InvalidPlan(format!(
                "chain of mismatched schemas ({} vs {} columns)",
                first.schema().len(),
                second.schema().len()
            )));
        }
        Ok(Chain {
            first,
            second,
            on_second: false,
        })
    }
}

impl Operator for Chain {
    fn schema(&self) -> &Arc<Schema> {
        self.first.schema()
    }

    fn next(&mut self) -> Result<Option<TupleBlock>> {
        if !self.on_second {
            if let Some(b) = self.first.next()? {
                return Ok(Some(b));
            }
            self.on_second = true;
        }
        self.second.next()
    }

    fn label(&self) -> String {
        format!("chain[{} + {}]", self.first.label(), self.second.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect_rows;
    use crate::predicate::CmpOp;
    use rodb_types::Column;

    fn base_schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![Column::int("k"), Column::int("v")]).unwrap())
    }

    fn rows(n: i32) -> Arc<Vec<Vec<Value>>> {
        Arc::new(
            (0..n)
                .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
                .collect(),
        )
    }

    #[test]
    fn memscan_filters_and_projects() {
        let ctx = ExecContext::default_ctx();
        let s = base_schema();
        let mut scan = MemScan::new(
            &s,
            rows(250),
            vec![1, 0],
            vec![Predicate::lt(0, 5)],
            1000,
            &ctx,
        )
        .unwrap();
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[3], vec![Value::Int(30), Value::Int(3)]);
        // CPU was charged, and no disk traffic exists to charge.
        assert!(ctx.meter.borrow().counters().uops > 0.0);
        assert_eq!(ctx.disk.borrow().stats().bytes_read, 0.0);
    }

    #[test]
    fn memscan_positions_continue_the_base_ordinals() {
        let ctx = ExecContext::default_ctx();
        let s = base_schema();
        let mut scan = MemScan::new(&s, rows(3), vec![0], vec![], 7, &ctx).unwrap();
        let b = scan.next().unwrap().unwrap();
        assert_eq!(b.positions(), &[7, 8, 9]);
        assert!(scan.next().unwrap().is_none());
    }

    #[test]
    fn memscan_blocks_respect_block_tuples() {
        let ctx = ExecContext::default_ctx();
        let s = base_schema();
        let mut scan = MemScan::new(&s, rows(250), vec![0], vec![], 0, &ctx).unwrap();
        let b = scan.next().unwrap().unwrap();
        assert_eq!(b.count(), ctx.sys.block_tuples);
    }

    #[test]
    fn chain_concatenates_and_rejects_mismatch() {
        let ctx = ExecContext::default_ctx();
        let s = base_schema();
        let a = MemScan::new(&s, rows(3), vec![0], vec![], 0, &ctx).unwrap();
        let b = MemScan::new(&s, rows(2), vec![0], vec![], 3, &ctx).unwrap();
        let mut chain = Chain::new(Box::new(a), Box::new(b)).unwrap();
        let got = collect_rows(&mut chain).unwrap();
        assert_eq!(
            got,
            vec![
                vec![Value::Int(0)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(0)],
                vec![Value::Int(1)],
            ]
        );
        let a = MemScan::new(&s, rows(1), vec![0], vec![], 0, &ctx).unwrap();
        let b = MemScan::new(&s, rows(1), vec![0, 1], vec![], 0, &ctx).unwrap();
        assert!(Chain::new(Box::new(a), Box::new(b)).is_err());
    }

    #[test]
    fn memscan_empty_and_all_filtered() {
        let ctx = ExecContext::default_ctx();
        let s = base_schema();
        let mut scan = MemScan::new(&s, rows(0), vec![0], vec![], 0, &ctx).unwrap();
        assert!(scan.next().unwrap().is_none());
        let mut scan = MemScan::new(
            &s,
            rows(50),
            vec![0],
            vec![Predicate::new(0, CmpOp::Lt, Value::Int(-1))],
            0,
            &ctx,
        )
        .unwrap();
        assert!(scan.next().unwrap().is_none());
    }
}
