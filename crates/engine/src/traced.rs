//! Span-recording operator wrapper and trace finalization.
//!
//! When an [`ExecContext`] carries a tracer (see
//! [`ExecContext::with_tracing`]), every plan node built through
//! [`crate::plan::ScanSpec`] or the query builder is wrapped in a
//! [`TracedOp`]. The wrapper snapshots the context's accounting — raw
//! [`CpuCounters`], the meter's per-phase profile, [`IoStats`] and the
//! simulated disk clock — around each `next()` call and accumulates the
//! deltas on the node's span. Deltas are *inclusive*: a parent's span
//! includes the work of the children pulled inside its `next()`, which is
//! the EXPLAIN ANALYZE convention.
//!
//! [`finish_query_trace`] then converts raw counter deltas into the
//! paper's modelled CPU seconds per span, synthesizes [`SpanKind::Phase`]
//! children (decode, predicate, gather…) from each node's *self* share of
//! the phase profile, and overwrites the root span with the final
//! [`RunReport`] numbers so the trace reconciles with the engine's own
//! accounting exactly — including the nonlinear prefetch-overlap term and
//! the parallel executor's head-switch seek recharge, neither of which
//! distributes over per-span summation.

use std::time::Instant;

use rodb_cpu::{CpuBreakdown, CpuCounters, CpuPhase, PhaseProfile};
use rodb_io::IoStats;
use rodb_trace::{keys, QueryTrace, SpanId, SpanKind, SpanNode, Tracer};
use rodb_types::Result;
use std::sync::Arc;

use crate::block::TupleBlock;
use crate::exec::RunReport;
use crate::op::{ExecContext, Operator};

/// An operator wrapped with span recording. Built only when the context
/// traces; untraced plans never see this type.
pub struct TracedOp {
    inner: Box<dyn Operator>,
    ctx: ExecContext,
    tracer: Tracer,
    span: SpanId,
}

impl TracedOp {
    /// Wrap `inner` in a span of `kind` — or return it untouched when the
    /// context does not trace (the zero-overhead default).
    pub fn wrap(inner: Box<dyn Operator>, kind: SpanKind, ctx: &ExecContext) -> Box<dyn Operator> {
        let Some(tracer) = &ctx.tracer else {
            return inner;
        };
        let span = tracer.op_span(&inner.label(), kind);
        Box::new(TracedOp {
            inner,
            ctx: ctx.clone(),
            tracer: tracer.clone(),
            span,
        })
    }
}

impl Operator for TracedOp {
    fn schema(&self) -> &Arc<rodb_types::Schema> {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<TupleBlock>> {
        let before = Snapshot::take(&self.ctx);
        let out = self.inner.next();
        before.record(&self.ctx, &self.tracer, self.span);
        self.tracer.add(self.span, keys::CALLS, 1.0);
        if let Ok(Some(b)) = &out {
            self.tracer.add(self.span, keys::ROWS, b.count() as f64);
            self.tracer.add(self.span, keys::BLOCKS, 1.0);
        }
        out
    }

    fn label(&self) -> String {
        self.inner.label()
    }
}

/// Record a span around an arbitrary piece of traced work (used where an
/// operator is consumed by value — e.g. the parallel executor folding an
/// [`crate::agg::Aggregate`] into a partial — and cannot be wrapped).
pub fn record_block<T>(
    ctx: &ExecContext,
    label: &str,
    kind: SpanKind,
    f: impl FnOnce() -> Result<T>,
) -> Result<T> {
    let Some(tracer) = ctx.tracer.clone() else {
        return f();
    };
    let span = tracer.op_span(label, kind);
    let before = Snapshot::take(ctx);
    let out = f();
    before.record(ctx, &tracer, span);
    tracer.add(span, keys::CALLS, 1.0);
    out
}

/// Accounting state captured before an operator call; [`Snapshot::record`]
/// charges the difference to a span.
struct Snapshot {
    cnt: CpuCounters,
    phases: PhaseProfile,
    io: IoStats,
    io_elapsed: f64,
    simd_blocks: u64,
    wall: Instant,
}

impl Snapshot {
    fn take(ctx: &ExecContext) -> Snapshot {
        let meter = ctx.meter.borrow();
        let disk = ctx.disk.borrow();
        Snapshot {
            cnt: *meter.counters(),
            phases: meter.profile_snapshot(),
            io: *disk.stats(),
            io_elapsed: disk.elapsed(),
            simd_blocks: rodb_compress::simd::simd_blocks_decoded(),
            wall: Instant::now(),
        }
    }

    fn record(&self, ctx: &ExecContext, tracer: &Tracer, span: SpanId) {
        tracer.add(span, keys::WALL_S, self.wall.elapsed().as_secs_f64());
        tracer.add(
            span,
            keys::KERNEL_SIMD_BLOCKS,
            (rodb_compress::simd::simd_blocks_decoded() - self.simd_blocks) as f64,
        );
        {
            let meter = ctx.meter.borrow();
            add_counter_deltas(tracer, span, &self.cnt, meter.counters());
            if let Some(now) = meter.profile() {
                for (phase, after) in now.iter() {
                    add_phase_deltas(tracer, span, phase, self.phases.get(phase), after);
                }
            }
        }
        let disk = ctx.disk.borrow();
        let now = disk.stats();
        tracer.add(span, keys::IO_S, disk.elapsed() - self.io_elapsed);
        tracer.add(span, keys::IO_BYTES, now.bytes_read - self.io.bytes_read);
        tracer.add(span, keys::IO_SEEKS, (now.seeks - self.io.seeks) as f64);
        tracer.add(span, keys::IO_BURSTS, (now.bursts - self.io.bursts) as f64);
        tracer.add(
            span,
            keys::IO_COMP_BURSTS,
            (now.comp_bursts - self.io.comp_bursts) as f64,
        );
        tracer.add(
            span,
            keys::IO_TRANSFER_S,
            now.transfer_s - self.io.transfer_s,
        );
        tracer.add(span, keys::IO_SEEK_S, now.seek_s - self.io.seek_s);
        tracer.add(span, keys::IO_COMP_S, now.comp_s - self.io.comp_s);
        tracer.add(
            span,
            keys::IO_PAGES_SKIPPED,
            (now.pages_skipped - self.io.pages_skipped) as f64,
        );
        let (r0, r1) = (&self.io.recovery, &now.recovery);
        tracer.add(span, keys::IO_RETRIES, (r1.retries - r0.retries) as f64);
        tracer.add(span, keys::IO_REPAIRS, (r1.repairs - r0.repairs) as f64);
        tracer.add(
            span,
            keys::IO_QUARANTINED,
            (r1.quarantined_pages - r0.quarantined_pages) as f64,
        );
        tracer.add(
            span,
            keys::IO_DROPPED_ROWS,
            (r1.dropped_rows - r0.dropped_rows) as f64,
        );
        let (c0, c1) = (&self.io.cache, &now.cache);
        tracer.add(span, keys::IO_CACHE_HITS, (c1.hits - c0.hits) as f64);
        tracer.add(span, keys::IO_CACHE_MISSES, (c1.misses - c0.misses) as f64);
        tracer.add(
            span,
            keys::IO_CACHE_EVICTIONS,
            (c1.evictions - c0.evictions) as f64,
        );
        tracer.add(
            span,
            keys::IO_CACHE_PREFETCHED,
            (c1.prefetched - c0.prefetched) as f64,
        );
    }
}

fn add_counter_deltas(tracer: &Tracer, span: SpanId, before: &CpuCounters, after: &CpuCounters) {
    tracer.add(span, keys::CNT_UOPS, after.uops - before.uops);
    tracer.add(
        span,
        keys::CNT_SEQ_BYTES,
        after.seq_bytes - before.seq_bytes,
    );
    tracer.add(
        span,
        keys::CNT_RAND_MISSES,
        after.rand_misses - before.rand_misses,
    );
    tracer.add(span, keys::CNT_L1_LINES, after.l1_lines - before.l1_lines);
    tracer.add(
        span,
        keys::CNT_MISPREDICTS,
        after.branch_mispredicts - before.branch_mispredicts,
    );
    tracer.add(
        span,
        keys::CNT_IO_REQUESTS,
        after.io_requests - before.io_requests,
    );
    tracer.add(span, keys::CNT_IO_BYTES, after.io_bytes - before.io_bytes);
    tracer.add(
        span,
        keys::CNT_IO_SWITCHES,
        after.io_switches - before.io_switches,
    );
}

/// Per-phase deltas land under `phase.<name>.<field>`; the annotation pass
/// folds them into synthesized phase child spans and removes the raw keys.
fn add_phase_deltas(
    tracer: &Tracer,
    span: SpanId,
    phase: CpuPhase,
    before: &CpuCounters,
    after: &CpuCounters,
) {
    let name = phase.name();
    let put = |field: &str, delta: f64| {
        if delta != 0.0 {
            tracer.add(span, &format!("phase.{name}.{field}"), delta);
        }
    };
    put("uops", after.uops - before.uops);
    put("seq_bytes", after.seq_bytes - before.seq_bytes);
    put("rand_misses", after.rand_misses - before.rand_misses);
    put("l1_lines", after.l1_lines - before.l1_lines);
    put(
        "branch_mispredicts",
        after.branch_mispredicts - before.branch_mispredicts,
    );
    put("io_requests", after.io_requests - before.io_requests);
    put("io_bytes", after.io_bytes - before.io_bytes);
    put("io_switches", after.io_switches - before.io_switches);
}

const CNT_FIELDS: [&str; 8] = [
    "uops",
    "seq_bytes",
    "rand_misses",
    "l1_lines",
    "branch_mispredicts",
    "io_requests",
    "io_bytes",
    "io_switches",
];

fn counters_from(get: impl Fn(&str) -> f64) -> CpuCounters {
    CpuCounters {
        uops: get("uops"),
        seq_bytes: get("seq_bytes"),
        rand_misses: get("rand_misses"),
        l1_lines: get("l1_lines"),
        branch_mispredicts: get("branch_mispredicts"),
        io_requests: get("io_requests"),
        io_bytes: get("io_bytes"),
        io_switches: get("io_switches"),
    }
}

/// Assemble the finished trace from a traced context: convert raw counter
/// deltas to modelled CPU seconds, synthesize phase child spans, and pin
/// the root to the report's exact totals. Returns `None` when the context
/// does not trace.
pub fn finish_query_trace(ctx: &ExecContext, report: &RunReport) -> Option<QueryTrace> {
    let tracer = ctx.tracer.as_ref()?;
    let mut trace = tracer.finish();
    annotate(&mut trace.root, ctx);
    apply_report(&mut trace, report);
    Some(trace)
}

/// Overwrite the root span with the report's totals (the single source of
/// truth). Used both per morsel and — through the parallel merge — on the
/// final merged trace, so span totals reconcile with the engine exactly.
pub fn apply_report(trace: &mut QueryTrace, report: &RunReport) {
    let m = &mut trace.root.metrics;
    // `set`, not `add`: the tier is an ordinal (0 scalar, 1 SSE2, 2 AVX2,
    // 3 NEON), so it must survive morsel merges unsummed.
    m.set(
        keys::KERNEL_TIER,
        rodb_compress::simd::active_tier() as u8 as f64,
    );
    m.set(keys::ROWS, report.rows as f64);
    m.set(keys::BLOCKS, report.blocks as f64);
    m.set(keys::CPU_TOTAL_S, report.cpu.total());
    m.set(keys::CPU_SYS_S, report.cpu.sys);
    m.set(keys::CPU_USR_UOP_S, report.cpu.usr_uop);
    m.set(keys::CPU_USR_L2_S, report.cpu.usr_l2);
    m.set(keys::CPU_USR_L1_S, report.cpu.usr_l1);
    m.set(keys::CPU_USR_REST_S, report.cpu.usr_rest);
    m.set(keys::IO_S, report.io_s());
    m.set(keys::IO_BYTES, report.io.bytes_read);
    m.set(keys::IO_SEEKS, report.io.seeks as f64);
    m.set(keys::IO_BURSTS, report.io.bursts as f64);
    m.set(keys::IO_COMP_BURSTS, report.io.comp_bursts as f64);
    m.set(keys::IO_TRANSFER_S, report.io.transfer_s);
    m.set(keys::IO_SEEK_S, report.io.seek_s);
    m.set(keys::IO_COMP_S, report.io.comp_s);
    m.set(keys::IO_PAGES_SKIPPED, report.io.pages_skipped as f64);
    m.set(keys::IO_RETRIES, report.io.recovery.retries as f64);
    m.set(keys::IO_REPAIRS, report.io.recovery.repairs as f64);
    m.set(
        keys::IO_QUARANTINED,
        report.io.recovery.quarantined_pages as f64,
    );
    m.set(
        keys::IO_DROPPED_ROWS,
        report.io.recovery.dropped_rows as f64,
    );
    m.set(keys::IO_CACHE_HITS, report.io.cache.hits as f64);
    m.set(keys::IO_CACHE_MISSES, report.io.cache.misses as f64);
    m.set(keys::IO_CACHE_EVICTIONS, report.io.cache.evictions as f64);
    m.set(keys::IO_CACHE_PREFETCHED, report.io.cache.prefetched as f64);
    m.set(keys::ELAPSED_S, report.elapsed_s);
}

/// Top-down annotation: each node's inclusive raw counters become modelled
/// CPU seconds, and its *self* share of the phase profile (inclusive minus
/// direct children, whose keys are still raw at this point) becomes
/// synthesized [`SpanKind::Phase`] children.
fn annotate(node: &mut SpanNode, ctx: &ExecContext) {
    let scale = ctx.row_scale;
    let params = *ctx.meter.borrow().params();
    let c = counters_from(|f| node.metrics.get(&format!("cnt.{f}")));
    if c != CpuCounters::default() {
        let b = CpuBreakdown::from_counters(&c, &ctx.hw, &params).scaled(scale);
        node.metrics.set(keys::CPU_TOTAL_S, b.total());
        node.metrics.set(keys::CPU_SYS_S, b.sys);
        node.metrics.set(keys::CPU_USR_UOP_S, b.usr_uop);
        node.metrics.set(keys::CPU_USR_L2_S, b.usr_l2);
        node.metrics.set(keys::CPU_USR_L1_S, b.usr_l1);
        node.metrics.set(keys::CPU_USR_REST_S, b.usr_rest);
    }

    // Self phase share: inclusive deltas minus the direct children's
    // (their phase keys are still raw — they have not recursed yet).
    let mut own: Vec<(String, f64)> = node.metrics.remove_prefix("phase.");
    for child in &node.children {
        for (key, child_v) in child.metrics.iter() {
            if !key.starts_with("phase.") {
                continue;
            }
            if let Some((_, v)) = own.iter_mut().find(|(k, _)| k == key) {
                *v -= child_v;
            }
        }
    }
    for phase in CpuPhase::ALL {
        let prefix = format!("phase.{}.", phase.name());
        let get = |f: &str| {
            own.iter()
                .find(|(k, _)| k.starts_with(&prefix) && k[prefix.len()..] == *f)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        let c = counters_from(|f| get(f).max(0.0));
        if c == CpuCounters::default() {
            continue;
        }
        let b = CpuBreakdown::from_counters(&c, &ctx.hw, &params).scaled(scale);
        let mut metrics = rodb_trace::Metrics::default();
        metrics.set(keys::CPU_TOTAL_S, b.total());
        metrics.set(keys::CPU_USR_UOP_S, b.usr_uop);
        metrics.set(keys::CPU_USR_L2_S, b.usr_l2);
        for f in CNT_FIELDS {
            metrics.add(&format!("cnt.{f}"), get(f).max(0.0));
        }
        node.children.push(SpanNode {
            label: format!("phase:{}", phase.name()),
            kind: SpanKind::Phase,
            metrics,
            children: Vec::new(),
        });
    }

    for child in &mut node.children {
        if child.kind != SpanKind::Phase {
            annotate(child, ctx);
        } else {
            // Synthesized above (or merged in); raw keys already folded.
            child.metrics.remove_prefix("phase.");
        }
    }
}
