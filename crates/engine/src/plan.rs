//! Tiny plan builder.
//!
//! The paper uses precompiled plans (no parser or optimizer, §2.2.3); this
//! module is the programmatic equivalent: describe a scan (+ optional
//! aggregation), pick a layout, and build the operator tree.

use std::sync::Arc;

use rodb_storage::Table;
use rodb_types::{Error, Result};

use crate::agg::{AggSpec, AggStrategy, Aggregate};
use crate::op::{ExecContext, Operator};
use crate::predicate::Predicate;
use crate::scan_col::{ColumnScanMode, ColumnScanner};
use crate::scan_col_single::SingleIteratorColumnScanner;
use crate::scan_row::RowScanner;
use crate::traced::TracedOp;
use rodb_trace::SpanKind;

/// Which physical access path a scan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanLayout {
    /// Row-store file scan.
    Row,
    /// Pipelined column scanner (the paper's measured design).
    Column,
    /// Pipelined column scanner with serialized disk requests
    /// (Figure 11's "slow" reference variant).
    ColumnSlow,
    /// Single-iterator column scanner (the §4.2 extension).
    ColumnSingleIterator,
}

impl std::fmt::Display for ScanLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ScanLayout::Row => "row",
            ScanLayout::Column => "column",
            ScanLayout::ColumnSlow => "column-slow",
            ScanLayout::ColumnSingleIterator => "column-single",
        };
        write!(f, "{s}")
    }
}

/// A declarative scan description.
#[derive(Debug, Clone)]
pub struct ScanSpec {
    pub table: Arc<Table>,
    pub layout: ScanLayout,
    pub projection: Vec<usize>,
    pub predicates: Vec<Predicate>,
    /// Restrict the scan to row ordinals `[start, end)` — one morsel of a
    /// parallel scan. `None` scans the whole table.
    pub row_range: Option<(u64, u64)>,
}

impl ScanSpec {
    pub fn new(table: Arc<Table>, layout: ScanLayout, projection: Vec<usize>) -> ScanSpec {
        ScanSpec {
            table,
            layout,
            projection,
            predicates: Vec::new(),
            row_range: None,
        }
    }

    pub fn with_predicates(mut self, predicates: Vec<Predicate>) -> ScanSpec {
        self.predicates = predicates;
        self
    }

    /// Restrict the scan to the row-ordinal window `[start, end)`. Only the
    /// [`ScanLayout::Row`] and [`ScanLayout::Column`] paths support ranges.
    pub fn with_row_range(mut self, start: u64, end: u64) -> ScanSpec {
        self.row_range = Some((start, end));
        self
    }

    /// Build the scan operator.
    pub fn build(self, ctx: &ExecContext) -> Result<Box<dyn Operator>> {
        if self.row_range.is_some()
            && matches!(
                self.layout,
                ScanLayout::ColumnSlow | ScanLayout::ColumnSingleIterator
            )
        {
            return Err(Error::InvalidPlan(format!(
                "row ranges are not supported by the {} layout",
                self.layout
            )));
        }
        let scan: Box<dyn Operator> = match self.layout {
            ScanLayout::Row => Box::new(RowScanner::new_range(
                self.table,
                self.projection,
                self.predicates,
                ctx,
                self.row_range,
            )?),
            ScanLayout::Column => Box::new(ColumnScanner::new_range(
                self.table,
                self.projection,
                self.predicates,
                ColumnScanMode::Pipelined,
                ctx,
                self.row_range,
            )?),
            ScanLayout::ColumnSlow => Box::new(ColumnScanner::new(
                self.table,
                self.projection,
                self.predicates,
                ColumnScanMode::Slow,
                ctx,
            )?),
            ScanLayout::ColumnSingleIterator => Box::new(SingleIteratorColumnScanner::new(
                self.table,
                self.projection,
                self.predicates,
                ctx,
            )?),
        };
        Ok(TracedOp::wrap(scan, SpanKind::Scan, ctx))
    }

    /// Build the scan with an aggregation on top.
    pub fn build_with_agg(
        self,
        group_by: Option<usize>,
        specs: Vec<AggSpec>,
        strategy: AggStrategy,
        ctx: &ExecContext,
    ) -> Result<Box<dyn Operator>> {
        let scan = self.build(ctx)?;
        let agg: Box<dyn Operator> =
            Box::new(Aggregate::new(scan, group_by, specs, strategy, ctx)?);
        Ok(TracedOp::wrap(agg, SpanKind::Agg, ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect_rows;
    use rodb_storage::{BuildLayouts, TableBuilder};
    use rodb_types::{Column, Schema, Value};

    fn table() -> Arc<Table> {
        let s = Arc::new(Schema::new(vec![Column::int("a"), Column::int("b")]).unwrap());
        let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::both()).unwrap();
        for i in 0..500 {
            b.push_row(&[Value::Int(i % 10), Value::Int(i)]).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn all_layouts_agree() {
        let t = table();
        let mut results = Vec::new();
        for layout in [
            ScanLayout::Row,
            ScanLayout::Column,
            ScanLayout::ColumnSlow,
            ScanLayout::ColumnSingleIterator,
        ] {
            let ctx = ExecContext::default_ctx();
            let mut op = ScanSpec::new(t.clone(), layout, vec![0, 1])
                .with_predicates(vec![Predicate::lt(0, 3)])
                .build(&ctx)
                .unwrap();
            results.push(collect_rows(&mut op).unwrap());
        }
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
        assert_eq!(results[0].len(), 150);
    }

    #[test]
    fn scan_plus_aggregate() {
        let t = table();
        let ctx = ExecContext::default_ctx();
        let mut op = ScanSpec::new(t, ScanLayout::Column, vec![0, 1])
            .build_with_agg(Some(0), vec![AggSpec::count()], AggStrategy::Hash, &ctx)
            .unwrap();
        let rows = collect_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert_eq!(r[1], Value::Long(50));
        }
    }
}
