//! Aggregation operators — hash-based and sort-based (§2.2.3).
//!
//! Output schema is `[group column?] ++ [one Long column per aggregate]`.
//! Aggregates compute in 64-bit to survive paper-scale inputs (a SUM over
//! 60 M four-byte ints overflows 32 bits immediately).

use std::collections::HashMap;
use std::sync::Arc;

#[cfg(test)]
use rodb_types::Value;
use rodb_types::{Column, DataType, Error, Result, Schema};

use crate::block::TupleBlock;
use crate::op::{ExecContext, Operator};

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate: a function over a child column (ignored for COUNT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggSpec {
    pub func: AggFunc,
    pub col: usize,
}

impl AggSpec {
    pub fn count() -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            col: 0,
        }
    }
    pub fn sum(col: usize) -> AggSpec {
        AggSpec {
            func: AggFunc::Sum,
            col,
        }
    }
    pub fn min(col: usize) -> AggSpec {
        AggSpec {
            func: AggFunc::Min,
            col,
        }
    }
    pub fn max(col: usize) -> AggSpec {
        AggSpec {
            func: AggFunc::Max,
            col,
        }
    }
    pub fn avg(col: usize) -> AggSpec {
        AggSpec {
            func: AggFunc::Avg,
            col,
        }
    }
}

/// Grouping algorithm. `Sorted` requires input already grouped on the key
/// (e.g. below a [`crate::sort::Sort`], or a scan of a key-ordered table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggStrategy {
    Hash,
    Sorted,
}

#[derive(Debug, Clone, Copy)]
struct Acc {
    count: i64,
    sum: i64,
    min: i64,
    max: i64,
}

impl Acc {
    fn new() -> Acc {
        Acc {
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }
    fn update(&mut self, v: i64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
    /// Fold another worker's accumulator for the same group into this one.
    /// Exact for every [`AggFunc`]: AVG is derived from merged sum/count.
    fn merge(&mut self, other: &Acc) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
    fn result(&self, f: AggFunc) -> i64 {
        match f {
            AggFunc::Count => self.count,
            AggFunc::Sum => self.sum,
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
            AggFunc::Avg => {
                if self.count == 0 {
                    0
                } else {
                    self.sum / self.count
                }
            }
        }
    }
}

/// One worker's partial aggregation state: the grouped accumulators it
/// built over its morsels, detached from the operator so it can cross
/// threads (plain data — `Send`). Produced by [`Aggregate::into_partial`],
/// combined by [`merge_partials`], re-attached by
/// [`Aggregate::install_partial`].
#[derive(Debug, Clone)]
pub struct AggPartial {
    groups: Vec<(Vec<u8>, Vec<Acc>)>,
    strategy: AggStrategy,
}

impl AggPartial {
    /// Number of distinct groups in this partial.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

/// Combine per-worker partials into one final state equal to what a serial
/// aggregation over the concatenated input would hold.
///
/// * `Hash`: groups are unioned, same-key accumulators merged, and the
///   result sorted by key bytes — the serial hash path's output order.
/// * `Sorted`: partials must arrive in morsel order; runs that span a
///   morsel boundary (last group of one partial = first group of the next)
///   are merged, and any other key reappearance is rejected exactly like
///   the serial path rejects ungrouped input.
pub fn merge_partials(partials: Vec<AggPartial>) -> Result<AggPartial> {
    let strategy = match partials.first() {
        Some(p) => p.strategy,
        None => {
            return Ok(AggPartial {
                groups: Vec::new(),
                strategy: AggStrategy::Hash,
            })
        }
    };
    if partials.iter().any(|p| p.strategy != strategy) {
        return Err(Error::InvalidPlan(
            "cannot merge partials of mixed aggregation strategies".into(),
        ));
    }
    let mut out: Vec<(Vec<u8>, Vec<Acc>)> = Vec::new();
    match strategy {
        AggStrategy::Hash => {
            let mut table: HashMap<Vec<u8>, usize> = HashMap::new();
            for p in partials {
                for (key, accs) in p.groups {
                    match table.get(&key) {
                        Some(&idx) => {
                            for (a, b) in out[idx].1.iter_mut().zip(&accs) {
                                a.merge(b);
                            }
                        }
                        None => {
                            table.insert(key.clone(), out.len());
                            out.push((key, accs));
                        }
                    }
                }
            }
            out.sort_by(|a, b| a.0.cmp(&b.0));
        }
        AggStrategy::Sorted => {
            for p in partials {
                for (key, accs) in p.groups {
                    match out.last_mut() {
                        Some((k, a)) if *k == key => {
                            for (x, y) in a.iter_mut().zip(&accs) {
                                x.merge(y);
                            }
                        }
                        _ => {
                            if out.iter().any(|(k, _)| *k == key) {
                                return Err(Error::InvalidPlan(
                                    "sorted aggregation over ungrouped input".into(),
                                ));
                            }
                            out.push((key, accs));
                        }
                    }
                }
            }
        }
    }
    Ok(AggPartial {
        groups: out,
        strategy,
    })
}

/// Grouped (or scalar) aggregation over one child.
pub struct Aggregate {
    child: Box<dyn Operator>,
    ctx: ExecContext,
    group_by: Option<usize>,
    specs: Vec<AggSpec>,
    strategy: AggStrategy,
    out_schema: Arc<Schema>,
    /// (group key raw bytes, accumulators) in output order.
    results: Option<Vec<(Vec<u8>, Vec<Acc>)>>,
    emit_idx: usize,
}

impl Aggregate {
    pub fn new(
        child: Box<dyn Operator>,
        group_by: Option<usize>,
        specs: Vec<AggSpec>,
        strategy: AggStrategy,
        ctx: &ExecContext,
    ) -> Result<Aggregate> {
        if specs.is_empty() {
            return Err(Error::InvalidPlan("aggregate with no functions".into()));
        }
        let in_schema = child.schema();
        if let Some(g) = group_by {
            if g >= in_schema.len() {
                return Err(Error::UnknownColumn(format!("group key index {g}")));
            }
        }
        let mut cols = Vec::new();
        if let Some(g) = group_by {
            cols.push(in_schema.columns()[g].clone());
        }
        for s in &specs {
            if s.func != AggFunc::Count {
                if s.col >= in_schema.len() {
                    return Err(Error::UnknownColumn(format!("aggregate input {}", s.col)));
                }
                if !in_schema.dtype(s.col).is_numeric() {
                    return Err(Error::InvalidPlan(format!(
                        "{} over non-numeric column {}",
                        s.func.name(),
                        s.col
                    )));
                }
            }
            let base = if s.func == AggFunc::Count {
                "count".to_string()
            } else {
                format!("{}_{}", s.func.name(), in_schema.columns()[s.col].name)
            };
            // De-duplicate output names.
            let mut name = base.clone();
            let mut k = 1;
            while cols.iter().any(|c: &Column| c.name == name) {
                k += 1;
                name = format!("{base}{k}");
            }
            cols.push(Column::new(name, DataType::Long));
        }
        Ok(Aggregate {
            child,
            ctx: ctx.clone(),
            group_by,
            specs,
            strategy,
            out_schema: Arc::new(Schema::new(cols)?),
            results: None,
            emit_idx: 0,
        })
    }

    fn numeric(&self, block: &TupleBlock, i: usize, col: usize) -> Result<i64> {
        match block.schema().dtype(col) {
            DataType::Int => Ok(block.int(i, col) as i64),
            DataType::Long => block.value(i, col)?.as_num(),
            DataType::Text(_) => Err(Error::InvalidPlan("aggregate over text column".into())),
        }
    }

    fn materialize(&mut self) -> Result<()> {
        let key_width = self
            .group_by
            .map(|g| self.child.schema().dtype(g).width())
            .unwrap_or(0);
        let mut total_rows = 0f64;
        let mut results: Vec<(Vec<u8>, Vec<Acc>)> = Vec::new();
        match self.strategy {
            AggStrategy::Hash => {
                let mut table: HashMap<Vec<u8>, usize> = HashMap::new();
                while let Some(block) = self.child.next()? {
                    total_rows += block.count() as f64;
                    for i in 0..block.count() {
                        let key: Vec<u8> = match self.group_by {
                            Some(g) => block.field(i, g).to_vec(),
                            None => Vec::new(),
                        };
                        let idx = match table.get(&key) {
                            Some(&idx) => idx,
                            None => {
                                results.push((key.clone(), vec![Acc::new(); self.specs.len()]));
                                table.insert(key, results.len() - 1);
                                results.len() - 1
                            }
                        };
                        for (si, s) in self.specs.iter().enumerate() {
                            let v = if s.func == AggFunc::Count {
                                0
                            } else {
                                self.numeric(&block, i, s.col)?
                            };
                            results[idx].1[si].update(v);
                        }
                    }
                    // Charge per block to keep borrow scopes tight.
                    let mut meter = self.ctx.meter.borrow_mut();
                    let n = block.count() as f64;
                    let entry_bytes = (key_width + 32 * self.specs.len()) as f64;
                    meter.hash_probe(n, results.len() as f64 * entry_bytes, 1.0e6);
                    meter.agg_update(n * self.specs.len() as f64);
                }
                // Deterministic output order.
                results.sort_by(|a, b| a.0.cmp(&b.0));
            }
            AggStrategy::Sorted => {
                let mut current: Option<(Vec<u8>, Vec<Acc>)> = None;
                while let Some(block) = self.child.next()? {
                    total_rows += block.count() as f64;
                    for i in 0..block.count() {
                        let key: Vec<u8> = match self.group_by {
                            Some(g) => block.field(i, g).to_vec(),
                            None => Vec::new(),
                        };
                        let start_new = match &current {
                            Some((k, _)) => *k != key,
                            None => true,
                        };
                        if start_new {
                            if let Some(done) = current.take() {
                                // Input must arrive grouped: a key may never
                                // reappear after its run ended.
                                if results.iter().any(|(k, _)| *k == key) {
                                    return Err(Error::InvalidPlan(
                                        "sorted aggregation over ungrouped input".into(),
                                    ));
                                }
                                results.push(done);
                            }
                            current = Some((key, vec![Acc::new(); self.specs.len()]));
                        }
                        let accs = &mut current.as_mut().expect("set above").1;
                        for (si, s) in self.specs.iter().enumerate() {
                            let v = if s.func == AggFunc::Count {
                                0
                            } else {
                                self.numeric(&block, i, s.col)?
                            };
                            accs[si].update(v);
                        }
                    }
                    let mut meter = self.ctx.meter.borrow_mut();
                    let n = block.count() as f64;
                    meter.key_compare(n);
                    meter.agg_update(n * self.specs.len() as f64);
                }
                if let Some(done) = current.take() {
                    results.push(done);
                }
            }
        }
        self.ctx.meter.borrow_mut().add_uops(total_rows.max(1.0));
        self.results = Some(results);
        Ok(())
    }

    /// Run the child to completion and hand back this worker's grouped
    /// accumulators instead of emitting final rows — the worker half of a
    /// parallel partial aggregation. All scan/aggregation CPU and I/O has
    /// been charged to this operator's context when this returns.
    pub fn into_partial(mut self) -> Result<AggPartial> {
        if self.results.is_none() {
            self.materialize()?;
        }
        Ok(AggPartial {
            groups: self.results.take().expect("materialized"),
            strategy: self.strategy,
        })
    }

    /// Install a merged partial as this operator's final state; subsequent
    /// [`Operator::next`] calls emit it without pulling the child. Charges
    /// the final-merge CPU (one accumulator fold per group per function) to
    /// this operator's context.
    pub fn install_partial(&mut self, p: AggPartial) {
        let n = p.groups.len() as f64;
        {
            let mut meter = self.ctx.meter.borrow_mut();
            meter.key_compare(n);
            meter.agg_update(n * self.specs.len() as f64);
        }
        self.results = Some(p.groups);
        self.emit_idx = 0;
    }
}

impl Operator for Aggregate {
    fn schema(&self) -> &Arc<Schema> {
        &self.out_schema
    }

    fn label(&self) -> String {
        match self.strategy {
            AggStrategy::Hash => "aggregate[hash]".to_string(),
            AggStrategy::Sorted => "aggregate[sort]".to_string(),
        }
    }

    fn next(&mut self) -> Result<Option<TupleBlock>> {
        if self.results.is_none() {
            self.materialize()?;
        }
        let results = self.results.as_ref().expect("materialized");
        if self.emit_idx >= results.len() {
            return Ok(None);
        }
        let cap = self.ctx.sys.block_tuples;
        let mut block = TupleBlock::new(self.out_schema.clone(), cap);
        let mut raw = Vec::new();
        while self.emit_idx < results.len() && block.count() < cap {
            let (key, accs) = &results[self.emit_idx];
            raw.clear();
            raw.extend_from_slice(key);
            for (s, acc) in self.specs.iter().zip(accs) {
                raw.extend_from_slice(&acc.result(s.func).to_le_bytes());
            }
            block.push_tuple(&raw, self.emit_idx as u64)?;
            self.emit_idx += 1;
        }
        self.ctx.meter.borrow_mut().block_calls(1.0);
        Ok(Some(block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect_rows;
    use crate::scan_row::RowScanner;
    use crate::sort::Sort;
    use rodb_storage::{BuildLayouts, TableBuilder};

    fn scan(n: usize, ctx: &ExecContext) -> Box<dyn Operator> {
        let s = Arc::new(
            Schema::new(vec![
                Column::int("grp"),
                Column::int("val"),
                Column::text("tag", 4),
            ])
            .unwrap(),
        );
        let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::row_only()).unwrap();
        for i in 0..n {
            b.push_row(&[
                Value::Int((i % 5) as i32),
                Value::Int(i as i32),
                Value::text("x"),
            ])
            .unwrap();
        }
        let t = Arc::new(b.finish().unwrap());
        Box::new(RowScanner::new(t, vec![0, 1, 2], vec![], ctx).unwrap())
    }

    #[test]
    fn scalar_aggregates() {
        let ctx = ExecContext::default_ctx();
        let mut agg = Aggregate::new(
            scan(1000, &ctx),
            None,
            vec![
                AggSpec::count(),
                AggSpec::sum(1),
                AggSpec::min(1),
                AggSpec::max(1),
                AggSpec::avg(1),
            ],
            AggStrategy::Hash,
            &ctx,
        )
        .unwrap();
        let rows = collect_rows(&mut agg).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Long(1000));
        assert_eq!(rows[0][1], Value::Long((0..1000).sum::<i64>()));
        assert_eq!(rows[0][2], Value::Long(0));
        assert_eq!(rows[0][3], Value::Long(999));
        assert_eq!(rows[0][4], Value::Long((0..1000).sum::<i64>() / 1000));
    }

    #[test]
    fn hash_group_by_matches_sorted_group_by() {
        let ctx = ExecContext::default_ctx();
        let mut hash = Aggregate::new(
            scan(1000, &ctx),
            Some(0),
            vec![AggSpec::count(), AggSpec::sum(1)],
            AggStrategy::Hash,
            &ctx,
        )
        .unwrap();
        let hash_rows = collect_rows(&mut hash).unwrap();

        let ctx2 = ExecContext::default_ctx();
        let sorted_in = Sort::new(scan(1000, &ctx2), vec![0], &ctx2).unwrap();
        let mut sorted = Aggregate::new(
            Box::new(sorted_in),
            Some(0),
            vec![AggSpec::count(), AggSpec::sum(1)],
            AggStrategy::Sorted,
            &ctx2,
        )
        .unwrap();
        let sorted_rows = collect_rows(&mut sorted).unwrap();
        assert_eq!(hash_rows, sorted_rows);
        assert_eq!(hash_rows.len(), 5);
        for r in &hash_rows {
            assert_eq!(r[1], Value::Long(200)); // each group has 200 rows
        }
    }

    #[test]
    fn sorted_strategy_detects_ungrouped_input() {
        let ctx = ExecContext::default_ctx();
        // grp cycles 0..5 repeatedly — not grouped.
        let mut agg = Aggregate::new(
            scan(100, &ctx),
            Some(0),
            vec![AggSpec::count()],
            AggStrategy::Sorted,
            &ctx,
        )
        .unwrap();
        assert!(agg.next().is_err());
    }

    #[test]
    fn output_schema_names_and_types() {
        let ctx = ExecContext::default_ctx();
        let agg = Aggregate::new(
            scan(10, &ctx),
            Some(0),
            vec![AggSpec::count(), AggSpec::sum(1), AggSpec::sum(1)],
            AggStrategy::Hash,
            &ctx,
        )
        .unwrap();
        let s = agg.schema();
        assert_eq!(s.columns()[0].name, "grp");
        assert_eq!(s.columns()[1].name, "count");
        assert_eq!(s.columns()[2].name, "sum_val");
        assert_eq!(s.columns()[3].name, "sum_val2");
        assert_eq!(s.dtype(1), DataType::Long);
    }

    #[test]
    fn validations() {
        let ctx = ExecContext::default_ctx();
        assert!(Aggregate::new(scan(10, &ctx), None, vec![], AggStrategy::Hash, &ctx).is_err());
        assert!(Aggregate::new(
            scan(10, &ctx),
            Some(9),
            vec![AggSpec::count()],
            AggStrategy::Hash,
            &ctx
        )
        .is_err());
        // SUM over text column rejected.
        assert!(Aggregate::new(
            scan(10, &ctx),
            None,
            vec![AggSpec::sum(2)],
            AggStrategy::Hash,
            &ctx
        )
        .is_err());
    }

    #[test]
    fn empty_input_scalar_yields_zero_count() {
        let ctx = ExecContext::default_ctx();
        let s = Arc::new(Schema::new(vec![Column::int("a")]).unwrap());
        let mut b = TableBuilder::new("e", s, 4096, BuildLayouts::row_only()).unwrap();
        b.push_row(&[Value::Int(1)]).unwrap();
        let t = Arc::new(b.finish().unwrap());
        let scan = RowScanner::new(
            t,
            vec![0],
            vec![crate::predicate::Predicate::lt(0, 0)],
            &ctx,
        )
        .unwrap();
        let mut agg = Aggregate::new(
            Box::new(scan),
            None,
            vec![AggSpec::count()],
            AggStrategy::Hash,
            &ctx,
        )
        .unwrap();
        // No input rows → no groups at all (SQL would return one row; the
        // paper's engine has no NULL story, so we emit none).
        assert!(agg.next().unwrap().is_none());
    }
}
