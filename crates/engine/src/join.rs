//! Merge join (§2.2.3).
//!
//! Inner equi-join over two inputs sorted ascending on their join keys —
//! the natural join for a bulk-loaded, key-ordered read store (e.g.
//! ORDERS ⋈ LINEITEM on the order key). Duplicate keys on the right are
//! buffered as a run and crossed with the matching left rows.

use std::cmp::Ordering;
use std::sync::Arc;

use rodb_types::{Column, DataType, Error, Result, Schema};

use crate::block::TupleBlock;
use crate::op::{ExecContext, Operator};

/// Compare two raw key fields of the same type.
fn cmp_key(dt: DataType, a: &[u8], b: &[u8]) -> Ordering {
    match dt {
        DataType::Int => {
            let av = i32::from_le_bytes(a[..4].try_into().unwrap());
            let bv = i32::from_le_bytes(b[..4].try_into().unwrap());
            av.cmp(&bv)
        }
        DataType::Long => {
            let av = i64::from_le_bytes(a[..8].try_into().unwrap());
            let bv = i64::from_le_bytes(b[..8].try_into().unwrap());
            av.cmp(&bv)
        }
        DataType::Text(_) => a.cmp(b),
    }
}

/// Pull-side cursor: one row at a time over an operator's blocks, verifying
/// ascending key order as it goes.
struct Cursor {
    op: Box<dyn Operator>,
    key: usize,
    block: Option<TupleBlock>,
    idx: usize,
    last_key: Option<Vec<u8>>,
}

impl Cursor {
    fn new(op: Box<dyn Operator>, key: usize) -> Cursor {
        Cursor {
            op,
            key,
            block: None,
            idx: 0,
            last_key: None,
        }
    }

    /// Ensure a current row; false at EOF.
    fn ensure(&mut self) -> Result<bool> {
        loop {
            if let Some(b) = &self.block {
                if self.idx < b.count() {
                    return Ok(true);
                }
            }
            match self.op.next()? {
                Some(b) => {
                    self.block = Some(b);
                    self.idx = 0;
                }
                None => {
                    self.block = None;
                    return Ok(false);
                }
            }
        }
    }

    fn current(&self) -> &[u8] {
        self.block
            .as_ref()
            .expect("ensure() checked")
            .tuple(self.idx)
    }

    fn current_key(&self) -> &[u8] {
        self.block
            .as_ref()
            .expect("ensure() checked")
            .field(self.idx, self.key)
    }

    fn advance(&mut self, dt: DataType) -> Result<()> {
        let k = self.current_key().to_vec();
        if let Some(prev) = &self.last_key {
            if cmp_key(dt, prev, &k) == Ordering::Greater {
                return Err(Error::InvalidPlan(
                    "merge join input not sorted on key".into(),
                ));
            }
        }
        self.last_key = Some(k);
        self.idx += 1;
        Ok(())
    }
}

/// Inner merge equi-join.
pub struct MergeJoin {
    ctx: ExecContext,
    left: Cursor,
    right: Cursor,
    key_dt: DataType,
    out_schema: Arc<Schema>,
    left_width: usize,
    /// Buffered right-side run sharing the current key.
    run: Vec<Vec<u8>>,
    run_key: Vec<u8>,
    run_pos: usize,
    done: bool,
}

impl MergeJoin {
    pub fn new(
        left: Box<dyn Operator>,
        left_key: usize,
        right: Box<dyn Operator>,
        right_key: usize,
        ctx: &ExecContext,
    ) -> Result<MergeJoin> {
        let ls = left.schema().clone();
        let rs = right.schema().clone();
        if left_key >= ls.len() {
            return Err(Error::UnknownColumn(format!("left key {left_key}")));
        }
        if right_key >= rs.len() {
            return Err(Error::UnknownColumn(format!("right key {right_key}")));
        }
        let key_dt = ls.dtype(left_key);
        if key_dt != rs.dtype(right_key) {
            return Err(Error::InvalidPlan(format!(
                "join key type mismatch: {} vs {}",
                key_dt,
                rs.dtype(right_key)
            )));
        }
        let mut cols: Vec<Column> = ls.columns().to_vec();
        for c in rs.columns() {
            let mut name = c.name.clone();
            while cols.iter().any(|e| e.name == name) {
                name.push_str("_r");
            }
            cols.push(Column::new(name, c.dtype));
        }
        Ok(MergeJoin {
            ctx: ctx.clone(),
            left: Cursor::new(left, left_key),
            right: Cursor::new(right, right_key),
            key_dt,
            out_schema: Arc::new(Schema::new(cols)?),
            left_width: ls.logical_width(),
            run: Vec::new(),
            run_key: Vec::new(),
            run_pos: 0,
            done: false,
        })
    }
}

impl Operator for MergeJoin {
    fn schema(&self) -> &Arc<Schema> {
        &self.out_schema
    }

    fn label(&self) -> String {
        "merge-join".to_string()
    }

    fn next(&mut self) -> Result<Option<TupleBlock>> {
        if self.done {
            return Ok(None);
        }
        let cap = self.ctx.sys.block_tuples;
        let mut block = TupleBlock::new(self.out_schema.clone(), cap);
        let mut compares = 0f64;
        let mut raw = vec![0u8; self.out_schema.logical_width()];

        'outer: while block.count() < cap {
            // Emit pending cross products of the current left row × run.
            if self.run_pos < self.run.len() {
                if !self.left.ensure()? {
                    break;
                }
                let lkey = self.left.current_key();
                compares += 1.0;
                if cmp_key(self.key_dt, lkey, &self.run_key) == Ordering::Equal {
                    let l = self.left.current();
                    raw[..self.left_width].copy_from_slice(l);
                    raw[self.left_width..].copy_from_slice(&self.run[self.run_pos]);
                    block.push_tuple(&raw, 0)?;
                    self.run_pos += 1;
                    if self.run_pos == self.run.len() {
                        // Next left row may share the key → replay the run.
                        self.left.advance(self.key_dt)?;
                        if self.left.ensure()?
                            && cmp_key(self.key_dt, self.left.current_key(), &self.run_key)
                                == Ordering::Equal
                        {
                            self.run_pos = 0;
                        } else {
                            self.run.clear();
                            self.run_pos = 0;
                        }
                    }
                    continue;
                }
                // Left moved past the run's key.
                self.run.clear();
                self.run_pos = 0;
            }

            // Find the next matching key pair.
            loop {
                if !self.left.ensure()? || !self.right.ensure()? {
                    break 'outer;
                }
                compares += 1.0;
                match cmp_key(
                    self.key_dt,
                    self.left.current_key(),
                    self.right.current_key(),
                ) {
                    Ordering::Less => self.left.advance(self.key_dt)?,
                    Ordering::Greater => self.right.advance(self.key_dt)?,
                    Ordering::Equal => {
                        // Buffer the right run for this key.
                        self.run_key = self.right.current_key().to_vec();
                        self.run.clear();
                        self.run_pos = 0;
                        while self.right.ensure()?
                            && cmp_key(self.key_dt, self.right.current_key(), &self.run_key)
                                == Ordering::Equal
                        {
                            self.run.push(self.right.current().to_vec());
                            self.right.advance(self.key_dt)?;
                        }
                        continue 'outer;
                    }
                }
            }
        }

        {
            let mut meter = self.ctx.meter.borrow_mut();
            meter.key_compare(compares);
            let out = block.count() as f64;
            meter.project(
                out,
                self.out_schema.len() as f64,
                out * self.out_schema.logical_width() as f64,
            );
            if block.count() > 0 {
                meter.block_calls(1.0);
                meter.stream_bytes(block.byte_len() as f64);
            }
        }

        if block.is_empty() {
            self.done = true;
            Ok(None)
        } else {
            Ok(Some(block))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect_rows;
    use crate::scan_row::RowScanner;
    use rodb_storage::{BuildLayouts, TableBuilder};
    use rodb_types::Value;

    fn table(name: &str, rows: &[(i32, i32)]) -> Arc<rodb_storage::Table> {
        let s = Arc::new(
            Schema::new(vec![
                Column::int(format!("{name}_k")),
                Column::int(format!("{name}_v")),
            ])
            .unwrap(),
        );
        let mut b = TableBuilder::new(name, s, 4096, BuildLayouts::row_only()).unwrap();
        for &(k, v) in rows {
            b.push_row(&[Value::Int(k), Value::Int(v)]).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn scan(t: &Arc<rodb_storage::Table>, ctx: &ExecContext) -> Box<dyn Operator> {
        Box::new(RowScanner::new(t.clone(), vec![0, 1], vec![], ctx).unwrap())
    }

    fn join_rows(l: &[(i32, i32)], r: &[(i32, i32)]) -> Vec<Vec<Value>> {
        let lt = table("l", l);
        let rt = table("r", r);
        let ctx = ExecContext::default_ctx();
        let mut j = MergeJoin::new(scan(&lt, &ctx), 0, scan(&rt, &ctx), 0, &ctx).unwrap();
        collect_rows(&mut j).unwrap()
    }

    fn nested_loop_oracle(l: &[(i32, i32)], r: &[(i32, i32)]) -> Vec<(i32, i32, i32, i32)> {
        let mut out = Vec::new();
        for &(lk, lv) in l {
            for &(rk, rv) in r {
                if lk == rk {
                    out.push((lk, lv, rk, rv));
                }
            }
        }
        out
    }

    #[test]
    fn one_to_one() {
        let l = [(1, 10), (2, 20), (4, 40)];
        let r = [(1, 100), (3, 300), (4, 400)];
        let rows = join_rows(&l, &r);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![1.into(), 10.into(), 1.into(), 100.into()]);
        assert_eq!(rows[1], vec![4.into(), 40.into(), 4.into(), 400.into()]);
    }

    #[test]
    fn many_to_many_duplicates() {
        let l = [(1, 1), (2, 2), (2, 3), (5, 5)];
        let r = [(2, 20), (2, 21), (2, 22), (5, 50)];
        let rows = join_rows(&l, &r);
        let oracle = nested_loop_oracle(&l, &r);
        assert_eq!(rows.len(), oracle.len()); // 2×3 + 1 = 7
        for (row, o) in rows.iter().zip(&oracle) {
            let got: Vec<i32> = row.iter().map(|v| v.as_int().unwrap()).collect();
            assert_eq!((got[0], got[1], got[2], got[3]), *o);
        }
    }

    #[test]
    fn fk_join_like_orders_lineitem() {
        // 1 order : 4 lineitems, as in TPC-H.
        let orders: Vec<(i32, i32)> = (0..50).map(|i| (i, i * 1000)).collect();
        let lineitems: Vec<(i32, i32)> = (0..200).map(|i| (i / 4, i)).collect();
        let rows = join_rows(&orders, &lineitems);
        assert_eq!(rows.len(), 200);
        for r in &rows {
            assert_eq!(r[0], r[2]);
        }
    }

    #[test]
    fn empty_sides() {
        assert!(join_rows(&[], &[(1, 1)]).is_empty());
        assert!(join_rows(&[(1, 1)], &[]).is_empty());
        assert!(join_rows(&[(1, 1)], &[(2, 2)]).is_empty());
    }

    #[test]
    fn unsorted_input_detected() {
        let lt = table("l", &[(5, 1), (1, 2), (7, 3)]);
        let rt = table("r", &[(1, 1), (5, 2), (7, 3)]);
        let ctx = ExecContext::default_ctx();
        let mut j = MergeJoin::new(scan(&lt, &ctx), 0, scan(&rt, &ctx), 0, &ctx).unwrap();
        let res = (|| -> Result<_> {
            let mut all = Vec::new();
            while let Some(b) = j.next()? {
                all.extend(b.rows()?);
            }
            Ok(all)
        })();
        assert!(res.is_err());
    }

    #[test]
    fn schema_renames_clashes() {
        let lt = table("x", &[(1, 1)]);
        let rt = table("x", &[(1, 1)]);
        let ctx = ExecContext::default_ctx();
        let j = MergeJoin::new(scan(&lt, &ctx), 0, scan(&rt, &ctx), 0, &ctx).unwrap();
        let names: Vec<&str> = j
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["x_k", "x_v", "x_k_r", "x_v_r"]);
    }

    #[test]
    fn key_type_mismatch_rejected() {
        let s1 = Arc::new(Schema::new(vec![Column::int("k")]).unwrap());
        let s2 = Arc::new(Schema::new(vec![Column::text("k", 4)]).unwrap());
        let mut b1 = TableBuilder::new("a", s1, 4096, BuildLayouts::row_only()).unwrap();
        b1.push_row(&[Value::Int(1)]).unwrap();
        let mut b2 = TableBuilder::new("b", s2, 4096, BuildLayouts::row_only()).unwrap();
        b2.push_row(&[Value::text("x")]).unwrap();
        let t1 = Arc::new(b1.finish().unwrap());
        let t2 = Arc::new(b2.finish().unwrap());
        let ctx = ExecContext::default_ctx();
        let l = Box::new(RowScanner::new(t1, vec![0], vec![], &ctx).unwrap());
        let r = Box::new(RowScanner::new(t2, vec![0], vec![], &ctx).unwrap());
        assert!(MergeJoin::new(l, 0, r, 0, &ctx).is_err());
    }
}
