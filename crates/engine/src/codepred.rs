//! Predicate evaluation on compressed data (the fast scan path).
//!
//! The codecs of §2.2.1 are all order-preserving except Dictionary: a
//! BitPack code *is* the value, and a FOR code is `value - base` with a
//! per-page base — so `value ⟨op⟩ literal` can be evaluated directly on the
//! stored codes by comparing against a rewritten literal, without decoding.
//! Dictionary codes are assigned in first-seen order (NOT value order), so a
//! dictionary predicate becomes a per-code truth bitmap built by evaluating
//! the predicate once per dictionary entry.
//!
//! Two page-level rewrite outcomes short-circuit entirely:
//! * the literal falls below every representable code → the predicate is
//!   constant over the page ([`CodePred::Const`]);
//! * a zone map proves no value in the page can qualify
//!   ([`zone_rejects`]) → the page is skipped without being read.

use rodb_compress::{Codec, ColumnCompression};
use rodb_types::Value;

use crate::predicate::{CmpOp, Predicate};

/// A predicate rewritten against one page's compression metadata, evaluable
/// on raw stored codes.
#[derive(Debug, Clone, PartialEq)]
pub enum CodePred {
    /// The predicate has the same outcome for every code in the page.
    Const(bool),
    /// Compare the stored code against a code-space literal. Valid only for
    /// order-preserving codecs (BitPack, FOR).
    Cmp { op: CmpOp, code: u64 },
    /// Per-code truth table (Dictionary: codes are first-seen order, so
    /// ranges don't map to code ranges — but the domain is small).
    Bitmap(Vec<bool>),
}

impl CodePred {
    /// Evaluate on one stored code.
    #[inline]
    pub fn eval(&self, code: u64) -> bool {
        match self {
            CodePred::Const(b) => *b,
            CodePred::Cmp { op, code: lit } => op.holds(code.cmp(lit)),
            CodePred::Bitmap(map) => map.get(code as usize).copied().unwrap_or(false),
        }
    }
}

/// The predicate literal as an `i64`, when it is numeric.
fn literal_i64(p: &Predicate) -> Option<i64> {
    match &p.literal {
        Value::Int(v) => Some(*v as i64),
        Value::Long(v) => Some(*v),
        Value::Text(_) => None,
    }
}

/// Rewrite `pred` against a page of codec `comp` with page base `base`
/// (FOR's per-page minimum; ignored by other codecs) and page code base
/// `code_base` (Dict→FOR's per-page minimum dictionary code; 0 elsewhere).
/// `None` means the predicate cannot be evaluated in code space — fall back
/// to decoding.
pub fn rewrite(
    pred: &Predicate,
    comp: &ColumnCompression,
    base: i64,
    code_base: u32,
) -> Option<CodePred> {
    use std::cmp::Ordering;
    match &comp.codec {
        Codec::BitPack { bits } => {
            let bits = *bits;
            if bits >= 63 {
                return None;
            }
            let lit = literal_i64(pred)?;
            // BitPack stores non-negative ints verbatim in `bits` bits.
            if lit < 0 {
                // Every stored value exceeds the literal.
                return Some(CodePred::Const(pred.op.holds(Ordering::Greater)));
            }
            if lit >= (1i64 << bits) {
                // Every stored value falls below the literal.
                return Some(CodePred::Const(pred.op.holds(Ordering::Less)));
            }
            Some(CodePred::Cmp {
                op: pred.op,
                code: lit as u64,
            })
        }
        Codec::For { bits } => {
            let bits = *bits;
            if bits >= 63 {
                return None;
            }
            let lit = literal_i64(pred)?;
            // value = base + code, codes in [0, 2^bits); order-preserving.
            let lit_code = lit.checked_sub(base)?;
            if lit_code < 0 {
                return Some(CodePred::Const(pred.op.holds(Ordering::Greater)));
            }
            if lit_code >= (1i64 << bits) {
                return Some(CodePred::Const(pred.op.holds(Ordering::Less)));
            }
            Some(CodePred::Cmp {
                op: pred.op,
                code: lit_code as u64,
            })
        }
        Codec::Pfor { .. } => {
            // PFOR codes are order-preserving (value = base + code) but the
            // patched exception codes exceed 2^bits, so only the *lower*
            // page-constant fold is sound; there is no upper code bound.
            let lit = literal_i64(pred)?;
            let lit_code = lit.checked_sub(base)?;
            if lit_code < 0 {
                return Some(CodePred::Const(pred.op.holds(Ordering::Greater)));
            }
            Some(CodePred::Cmp {
                op: pred.op,
                code: lit_code as u64,
            })
        }
        Codec::Dict { .. } => {
            // First-seen code order: build a truth table over the (small)
            // dictionary domain. Handles every operator and literal type the
            // value-space path handles, because it *is* the value-space
            // evaluation — done once per distinct value instead of per row.
            let dict = comp.dict.as_ref()?;
            let mut map = Vec::with_capacity(dict.len());
            for code in 0..dict.len() as u32 {
                map.push(pred.eval_value(dict.value_of(code).ok()?));
            }
            Some(CodePred::Bitmap(map))
        }
        Codec::DictFor { .. } => {
            // Stored codes are rebased by the page's minimum dictionary code:
            // stored s ↦ dictionary code (code_base + s). Build the truth
            // table in *stored* code space so it applies to raw codes.
            let dict = comp.dict.as_ref()?;
            let n = (dict.len() as u32).checked_sub(code_base)? as usize;
            let mut map = Vec::with_capacity(n);
            for s in 0..n as u32 {
                map.push(pred.eval_value(dict.value_of(code_base + s).ok()?));
            }
            Some(CodePred::Bitmap(map))
        }
        // Raw values have no codes; FOR-delta codes depend on the running
        // sum; TextPack is byte-level; RLE-family pages interleave run
        // lengths with value codes. All fall back to value space.
        Codec::None
        | Codec::ForDelta { .. }
        | Codec::TextPack { .. }
        | Codec::Rle { .. }
        | Codec::RleDict { .. } => None,
    }
}

/// Rewrite a conjunction; `None` if any member resists code space.
pub fn rewrite_all(
    preds: &[Predicate],
    comp: &ColumnCompression,
    base: i64,
    code_base: u32,
) -> Option<Vec<CodePred>> {
    preds
        .iter()
        .map(|p| rewrite(p, comp, base, code_base))
        .collect()
}

/// True when the zone map `[min, max]` (inclusive) proves that **no** value
/// in the page can satisfy the conjunction — the page may be skipped without
/// reading it. Conservative: text literals and uncovered cases return false.
pub fn zone_rejects(preds: &[Predicate], min: i64, max: i64) -> bool {
    preds.iter().any(|p| {
        let lit = match literal_i64(p) {
            Some(l) => l,
            None => return false,
        };
        match p.op {
            CmpOp::Lt => min >= lit,
            CmpOp::Le => min > lit,
            CmpOp::Eq => lit < min || lit > max,
            CmpOp::Ne => min == max && min == lit,
            CmpOp::Ge => max < lit,
            CmpOp::Gt => max <= lit,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodb_compress::Dictionary;
    use rodb_types::DataType;
    use std::sync::Arc;

    fn all_ops() -> [CmpOp; 6] {
        [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Ge,
            CmpOp::Gt,
        ]
    }

    #[test]
    fn bitpack_rewrite_matches_value_space() {
        let comp = ColumnCompression::new(Codec::BitPack { bits: 7 }, None).unwrap();
        for op in all_ops() {
            for lit in [-3i32, 0, 1, 64, 127, 128, 500] {
                let p = Predicate::new(0, op, Value::Int(lit));
                let cp = rewrite(&p, &comp, 0, 0).expect("bitpack always rewrites");
                for v in 0..128i32 {
                    assert_eq!(
                        cp.eval(v as u64),
                        p.eval_int(v),
                        "op {op:?} lit {lit} v {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn for_rewrite_matches_value_space() {
        let comp = ColumnCompression::new(Codec::For { bits: 6 }, None).unwrap();
        let base = -1000i64;
        for op in all_ops() {
            for lit in [-2000i32, -1001, -1000, -990, -937, -936, 0, 50] {
                let p = Predicate::new(0, op, Value::Int(lit));
                let cp = rewrite(&p, &comp, base, 0).expect("FOR always rewrites");
                for code in 0..64u64 {
                    let v = (base + code as i64) as i32;
                    assert_eq!(cp.eval(code), p.eval_int(v), "op {op:?} lit {lit} v {v}");
                }
            }
        }
    }

    #[test]
    fn dict_bitmap_handles_first_seen_order() {
        // Codes are in first-seen order 30, 10, 20 — NOT value order.
        let dict = Arc::new(
            Dictionary::build(
                DataType::Int,
                [Value::Int(30), Value::Int(10), Value::Int(20)].iter(),
            )
            .unwrap(),
        );
        let comp = ColumnCompression::new(Codec::Dict { bits: 2 }, Some(dict)).unwrap();
        for op in all_ops() {
            for lit in [5, 10, 15, 20, 25, 30, 35] {
                let p = Predicate::new(0, op, Value::Int(lit));
                let cp = rewrite(&p, &comp, 0, 0).expect("dict always rewrites");
                for (code, v) in [(0u64, 30), (1, 10), (2, 20)] {
                    assert_eq!(cp.eval(code), p.eval_int(v), "op {op:?} lit {lit} v {v}");
                }
                // Out-of-range code (corrupt page) evaluates false, not panic.
                assert!(!matches!(cp, CodePred::Bitmap(_)) || !cp.eval(3));
            }
        }
    }

    #[test]
    fn pfor_rewrite_matches_value_space_including_exceptions() {
        let comp = ColumnCompression::new(Codec::Pfor { bits: 4 }, None).unwrap();
        let base = 100i64;
        for op in all_ops() {
            for lit in [50i32, 99, 100, 105, 115, 116, 1000, 100_000] {
                let p = Predicate::new(0, op, Value::Int(lit));
                let cp = rewrite(&p, &comp, base, 0).expect("pfor rewrites numeric preds");
                // Normal codes live in [0, 2^4); patched exception codes
                // exceed that — the rewrite must stay correct for both.
                for code in [0u64, 1, 7, 15, 16, 40, 5000, 200_000] {
                    let v = (base + code as i64) as i32;
                    assert_eq!(cp.eval(code), p.eval_int(v), "op {op:?} lit {lit} v {v}");
                }
            }
        }
    }

    #[test]
    fn dictfor_bitmap_applies_page_code_base() {
        // Dictionary codes in first-seen order: 30→0, 10→1, 20→2, 40→3, 50→4.
        // A page whose minimum dictionary code is 2 stores codes rebased by
        // code_base = 2: stored 0 ↦ 20, stored 1 ↦ 40, stored 2 ↦ 50.
        let vals: Vec<Value> = [30, 10, 20, 40, 50]
            .iter()
            .map(|&v| Value::Int(v))
            .collect();
        let dict = Arc::new(Dictionary::build(DataType::Int, vals.iter()).unwrap());
        let comp = ColumnCompression::new(Codec::DictFor { bits: 2 }, Some(dict)).unwrap();
        for op in all_ops() {
            for lit in [5, 10, 20, 25, 40, 50, 55] {
                let p = Predicate::new(0, op, Value::Int(lit));
                let cp = rewrite(&p, &comp, 0, 2).expect("dictfor rewrites");
                for (stored, v) in [(0u64, 20), (1, 40), (2, 50)] {
                    assert_eq!(cp.eval(stored), p.eval_int(v), "op {op:?} lit {lit} v {v}");
                }
                // Out-of-range stored code (corrupt page) evaluates false.
                assert!(!cp.eval(3));
            }
        }
    }

    #[test]
    fn unrewritable_codecs_fall_back() {
        let p = Predicate::lt(0, 5);
        for comp in [
            ColumnCompression::none(),
            ColumnCompression::new(Codec::ForDelta { bits: 4 }, None).unwrap(),
            ColumnCompression::new(
                Codec::Rle {
                    value_bits: 4,
                    len_bits: 4,
                },
                None,
            )
            .unwrap(),
        ] {
            assert_eq!(rewrite(&p, &comp, 0, 0), None);
        }
        // Text literal on a numeric codec.
        let comp = ColumnCompression::new(Codec::BitPack { bits: 7 }, None).unwrap();
        assert_eq!(rewrite(&Predicate::eq(0, "x"), &comp, 0, 0), None);
    }

    #[test]
    fn zone_rejection_is_exact_on_boundaries() {
        // Page zone [10, 20].
        let z = |p: Predicate| zone_rejects(&[p], 10, 20);
        assert!(z(Predicate::lt(0, 10)));
        assert!(!z(Predicate::lt(0, 11)));
        assert!(z(Predicate::le(0, 9)));
        assert!(!z(Predicate::le(0, 10)));
        assert!(z(Predicate::gt(0, 20)));
        assert!(!z(Predicate::gt(0, 19)));
        assert!(z(Predicate::ge(0, 21)));
        assert!(!z(Predicate::ge(0, 20)));
        assert!(z(Predicate::eq(0, 9)));
        assert!(z(Predicate::eq(0, 21)));
        assert!(!z(Predicate::eq(0, 10)));
        assert!(!z(Predicate::eq(0, 20)));
        // Ne only rejects a constant page equal to the literal.
        assert!(!z(Predicate::new(0, CmpOp::Ne, Value::Int(15))));
        assert!(zone_rejects(
            &[Predicate::new(0, CmpOp::Ne, Value::Int(7))],
            7,
            7
        ));
        // The min == literal == max boundary: Eq must NOT skip.
        assert!(!zone_rejects(&[Predicate::eq(0, 7)], 7, 7));
        // Any rejecting conjunct rejects the page.
        assert!(zone_rejects(
            &[Predicate::gt(0, 0), Predicate::lt(0, 10)],
            10,
            20
        ));
        // Text predicates never reject.
        assert!(!zone_rejects(&[Predicate::eq(0, "zz")], 10, 20));
    }
}
