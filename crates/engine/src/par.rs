//! Morsel-driven parallel scan & aggregation (the multi-core variant the
//! paper's single-threaded engine deliberately leaves out).
//!
//! This is the single-query face of [`crate::sched::TaskScheduler`]: a
//! table is split into page-aligned [`rodb_storage::Morsel`]s, a pool of
//! `threads` OS threads pulls morsels from a shared queue and runs an
//! ordinary serial scan (plus partial aggregation when the plan has one)
//! over each, and merging is done once, deterministically, after the pool
//! joins:
//!
//! * **Rows** concatenate in morsel order, which equals serial scan order.
//! * **Aggregates** travel as per-morsel [`AggPartial`](crate::agg::AggPartial)s
//!   and are folded by [`crate::agg::merge_partials`] — exact for
//!   COUNT/SUM/MIN/MAX/AVG, and for the sorted strategy runs spanning a
//!   morsel boundary are stitched.
//! * **I/O** ([`rodb_io::IoStats`]) sums element-wise, then — because
//!   `threads` workers share the one simulated disk array — every burst is
//!   charged a head-switch seek ([`rodb_io::merge_parallel`]): interleaved
//!   workers lose the pure-sequential layout a single scanner enjoys.
//!   Simulated disk time is serialized across workers (one array, shared
//!   bandwidth).
//! * **CPU** counters sum into one query-wide [`rodb_cpu::CpuBreakdown`];
//!   the modelled *elapsed* time uses the parallel critical path
//!   `max(total/threads, largest morsel)` — the classic makespan lower
//!   bound, which is deterministic under work stealing.
//!
//! Everything above is the *simulated* clock. [`ParallelOutcome::wall_s`]
//! is real measured wall time of the parallel region, so real speedup
//! curves (1→N threads) can be plotted next to the model.

use std::time::Instant;

use rodb_trace::QueryTrace;
use rodb_types::{HardwareConfig, Result, SystemConfig, Value};

use crate::agg::{AggSpec, AggStrategy};
use crate::exec::RunReport;
use crate::plan::ScanSpec;
use crate::sched::{QueryJob, TaskScheduler};

/// The aggregation half of a parallel plan (group key and inputs are
/// positions in the scan's projected schema, as in
/// [`crate::agg::Aggregate::new`]).
#[derive(Debug, Clone)]
pub struct AggPlan {
    pub group_by: Option<usize>,
    pub specs: Vec<AggSpec>,
    pub strategy: AggStrategy,
}

/// What one parallel execution produced.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Merged report on the simulated clock. `report.cpu` is the *sum* of
    /// all workers' CPU (total work); `report.elapsed_s` uses the parallel
    /// critical path, so `report.io_bound()` is about work, not makespan.
    pub report: RunReport,
    /// Result rows (only when collected; identical to the serial order).
    pub rows: Vec<Vec<Value>>,
    /// Modelled CPU critical path in seconds (the parallel "CPU lane").
    pub cpu_crit_s: f64,
    /// Measured wall-clock seconds of the parallel region.
    pub wall_s: f64,
    /// Threads requested and morsels actually executed.
    pub threads: usize,
    pub morsels: usize,
    /// Merged per-morsel span trace (only when tracing was requested).
    pub trace: Option<QueryTrace>,
}

/// Morsel-driven parallel executor: the scan-level analogue of
/// [`crate::exec::run_to_completion`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelExec {
    pub threads: usize,
    /// Trace every morsel and merge the span trees (off by default).
    pub trace: bool,
}

impl ParallelExec {
    pub fn new(threads: usize) -> ParallelExec {
        ParallelExec {
            threads,
            trace: false,
        }
    }

    /// Enable per-morsel span tracing; the merged trace lands in
    /// [`ParallelOutcome::trace`].
    pub fn traced(mut self, on: bool) -> ParallelExec {
        self.trace = on;
        self
    }

    /// Execute for measurement only (results produced and discarded).
    pub fn run(
        &self,
        spec: &ScanSpec,
        agg: Option<&AggPlan>,
        hw: &HardwareConfig,
        sys: &SystemConfig,
        row_scale: f64,
        competing_scans: usize,
    ) -> Result<ParallelOutcome> {
        self.execute(spec, agg, hw, sys, row_scale, competing_scans, false)
    }

    /// Execute and materialize the result rows.
    pub fn run_collect(
        &self,
        spec: &ScanSpec,
        agg: Option<&AggPlan>,
        hw: &HardwareConfig,
        sys: &SystemConfig,
        row_scale: f64,
        competing_scans: usize,
    ) -> Result<ParallelOutcome> {
        self.execute(spec, agg, hw, sys, row_scale, competing_scans, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        spec: &ScanSpec,
        agg: Option<&AggPlan>,
        hw: &HardwareConfig,
        sys: &SystemConfig,
        row_scale: f64,
        competing_scans: usize,
        collect: bool,
    ) -> Result<ParallelOutcome> {
        let start = Instant::now();
        let job = QueryJob {
            spec: spec.clone(),
            agg: agg.cloned(),
            hw: *hw,
            sys: *sys,
            row_scale,
            competing_scans,
            collect,
            emit: true,
            trace: self.trace,
        };
        let out = TaskScheduler::new(self.threads)
            .run_jobs(&[job])?
            .pop()
            .expect("one job in, one outcome out");
        Ok(ParallelOutcome {
            report: out.report,
            rows: out.rows,
            cpu_crit_s: out.cpu_crit_s,
            wall_s: start.elapsed().as_secs_f64(),
            threads: self.threads,
            morsels: out.tasks,
            trace: out.trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect_rows, ExecContext};
    use crate::plan::ScanLayout;
    use crate::predicate::Predicate;
    use rodb_storage::{BuildLayouts, Table, TableBuilder};
    use rodb_types::{Column, Schema};
    use std::sync::Arc;

    fn table(n: usize) -> Arc<Table> {
        let s = Arc::new(Schema::new(vec![Column::int("a"), Column::int("b")]).unwrap());
        let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::both()).unwrap();
        for i in 0..n {
            b.push_row(&[
                rodb_types::Value::Int(i as i32),
                rodb_types::Value::Int((i % 9) as i32),
            ])
            .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn parallel_scan_matches_serial_order() {
        let t = table(10_000);
        let spec = ScanSpec::new(t.clone(), ScanLayout::Column, vec![0, 1])
            .with_predicates(vec![Predicate::lt(1, 4)]);
        let ctx = ExecContext::default_ctx();
        let mut serial = spec.clone().build(&ctx).unwrap();
        let want = collect_rows(&mut serial).unwrap();
        let out = ParallelExec::new(3)
            .run_collect(
                &spec,
                None,
                &HardwareConfig::default(),
                &SystemConfig::default(),
                1.0,
                0,
            )
            .unwrap();
        assert_eq!(out.rows, want);
        assert_eq!(out.report.rows, want.len() as u64);
        assert!(out.wall_s > 0.0);
        assert!(out.morsels >= 3);
    }

    #[test]
    fn zero_threads_rejected_and_empty_table_ok() {
        let t = table(100);
        let spec = ScanSpec::new(t, ScanLayout::Row, vec![0]);
        let hw = HardwareConfig::default();
        let sys = SystemConfig::default();
        assert!(ParallelExec::new(0)
            .run(&spec, None, &hw, &sys, 1.0, 0)
            .is_err());
    }
}
