//! Morsel-driven parallel scan & aggregation (the multi-core variant the
//! paper's single-threaded engine deliberately leaves out).
//!
//! A table is split into page-aligned [`rodb_storage::Morsel`]s; a pool of
//! `threads` OS threads pulls morsels from a shared queue and runs an
//! ordinary serial scan (plus partial aggregation when the plan has one)
//! over each. The engine's accounting state ([`ExecContext`]) is
//! `Rc`-based and deliberately single-threaded, so every *morsel* gets its
//! own context; merging is done once, deterministically, after the pool
//! joins:
//!
//! * **Rows** concatenate in morsel order, which equals serial scan order.
//! * **Aggregates** travel as per-morsel [`AggPartial`]s and are folded by
//!   [`merge_partials`] — exact for COUNT/SUM/MIN/MAX/AVG, and for the
//!   sorted strategy runs spanning a morsel boundary are stitched.
//! * **I/O** ([`IoStats`]) sums element-wise, then — because `threads`
//!   workers share the one simulated disk array — every burst is charged a
//!   head-switch seek ([`rodb_io::merge_parallel`]): interleaved workers
//!   lose the pure-sequential layout a single scanner enjoys. Simulated
//!   disk time is serialized across workers (one array, shared bandwidth).
//! * **CPU** counters sum into one query-wide [`CpuBreakdown`]; the
//!   modelled *elapsed* time uses the parallel critical path
//!   `max(total/threads, largest morsel)` — the classic makespan lower
//!   bound, which is deterministic under work stealing.
//!
//! Everything above is the *simulated* clock. [`ParallelOutcome::wall_s`]
//! is real measured wall time of the parallel region, so real speedup
//! curves (1→N threads) can be plotted next to the model.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use rodb_cpu::CpuBreakdown;
use rodb_io::IoStats;
use rodb_trace::{QueryTrace, SpanKind};
use rodb_types::{Error, HardwareConfig, Result, SystemConfig, Value};

use crate::agg::{merge_partials, AggPartial, AggSpec, AggStrategy, Aggregate};
use crate::exec::{RunReport, DEFAULT_OVERLAP_LOSS};
use crate::op::{drain, ExecContext, Operator};
use crate::plan::ScanSpec;
use crate::traced::{apply_report, finish_query_trace, record_block};

/// Morsels per worker thread: small enough that the queue load-balances,
/// large enough that per-morsel setup stays negligible.
const MORSELS_PER_THREAD: usize = 4;

/// Lower bound on morsel size. Every morsel pays fixed costs — a fresh
/// sequential run per column file (a seek plus its kernel switch charge)
/// and context setup — so slicing a small table into `threads × 4` crumbs
/// makes the parallel run *more* expensive than the serial one. Below this
/// many rows per morsel we create fewer morsels (never fewer than
/// `threads`, so available cores still all engage).
const MIN_MORSEL_ROWS: u64 = 32_768;

/// The aggregation half of a parallel plan (group key and inputs are
/// positions in the scan's projected schema, as in [`Aggregate::new`]).
#[derive(Debug, Clone)]
pub struct AggPlan {
    pub group_by: Option<usize>,
    pub specs: Vec<AggSpec>,
    pub strategy: AggStrategy,
}

/// What one parallel execution produced.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Merged report on the simulated clock. `report.cpu` is the *sum* of
    /// all workers' CPU (total work); `report.elapsed_s` uses the parallel
    /// critical path, so `report.io_bound()` is about work, not makespan.
    pub report: RunReport,
    /// Result rows (only when collected; identical to the serial order).
    pub rows: Vec<Vec<Value>>,
    /// Modelled CPU critical path in seconds (the parallel "CPU lane").
    pub cpu_crit_s: f64,
    /// Measured wall-clock seconds of the parallel region.
    pub wall_s: f64,
    /// Threads requested and morsels actually executed.
    pub threads: usize,
    pub morsels: usize,
    /// Merged per-morsel span trace (only when tracing was requested).
    pub trace: Option<QueryTrace>,
}

/// Everything a morsel execution sends back across the thread boundary
/// (plain data — the `Rc`-based context stays inside the worker).
struct MorselOutcome {
    rows: Vec<Vec<Value>>,
    nrows: u64,
    blocks: u64,
    io: IoStats,
    cpu: CpuBreakdown,
    partial: Option<AggPartial>,
    trace: Option<QueryTrace>,
}

/// Morsel-driven parallel executor: the scan-level analogue of
/// [`crate::exec::run_to_completion`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelExec {
    pub threads: usize,
    /// Trace every morsel and merge the span trees (off by default).
    pub trace: bool,
}

impl ParallelExec {
    pub fn new(threads: usize) -> ParallelExec {
        ParallelExec {
            threads,
            trace: false,
        }
    }

    /// Enable per-morsel span tracing; the merged trace lands in
    /// [`ParallelOutcome::trace`].
    pub fn traced(mut self, on: bool) -> ParallelExec {
        self.trace = on;
        self
    }

    /// Execute for measurement only (results produced and discarded).
    pub fn run(
        &self,
        spec: &ScanSpec,
        agg: Option<&AggPlan>,
        hw: &HardwareConfig,
        sys: &SystemConfig,
        row_scale: f64,
        competing_scans: usize,
    ) -> Result<ParallelOutcome> {
        self.execute(spec, agg, hw, sys, row_scale, competing_scans, false)
    }

    /// Execute and materialize the result rows.
    pub fn run_collect(
        &self,
        spec: &ScanSpec,
        agg: Option<&AggPlan>,
        hw: &HardwareConfig,
        sys: &SystemConfig,
        row_scale: f64,
        competing_scans: usize,
    ) -> Result<ParallelOutcome> {
        self.execute(spec, agg, hw, sys, row_scale, competing_scans, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        spec: &ScanSpec,
        agg: Option<&AggPlan>,
        hw: &HardwareConfig,
        sys: &SystemConfig,
        row_scale: f64,
        competing_scans: usize,
        collect: bool,
    ) -> Result<ParallelOutcome> {
        if self.threads == 0 {
            return Err(Error::InvalidPlan(
                "parallel execution with 0 threads".into(),
            ));
        }
        let start = Instant::now();
        let by_size = (spec.table.row_count / MIN_MORSEL_ROWS).max(1) as usize;
        let want = (self.threads * MORSELS_PER_THREAD).min(by_size.max(self.threads));
        let morsels = spec.table.morsels(want);
        let queue = AtomicUsize::new(0);

        // Pool: each worker pulls morsel indices until the queue drains,
        // tagging every outcome with its index so the merge below can
        // restore morsel (= serial) order regardless of who ran what.
        let mut tagged: Vec<(usize, MorselOutcome)> = Vec::with_capacity(morsels.len());
        let workers = self.threads.min(morsels.len()).max(1);
        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let queue = &queue;
                let morsels = &morsels;
                handles.push(scope.spawn(move || -> Result<Vec<(usize, MorselOutcome)>> {
                    let mut mine = Vec::new();
                    loop {
                        let idx = queue.fetch_add(1, Ordering::Relaxed);
                        let Some(m) = morsels.get(idx) else { break };
                        let out = run_morsel(
                            spec,
                            agg,
                            hw,
                            sys,
                            row_scale,
                            competing_scans,
                            (m.start, m.end),
                            collect,
                            self.trace,
                        )?;
                        mine.push((idx, out));
                    }
                    Ok(mine)
                }));
            }
            for h in handles {
                let mine = h.join().expect("parallel scan worker panicked")?;
                tagged.extend(mine);
            }
            Ok(())
        })?;
        tagged.sort_by_key(|(idx, _)| *idx);
        let mut outcomes: Vec<MorselOutcome> = tagged.into_iter().map(|(_, o)| o).collect();
        // Per-morsel traces, in morsel order (matching the accounting merge).
        let traces: Vec<QueryTrace> = outcomes.iter_mut().filter_map(|o| o.trace.take()).collect();

        // ---- deterministic merge --------------------------------------
        let per_io: Vec<IoStats> = outcomes.iter().map(|o| o.io).collect();
        let merged_io = rodb_io::merge_parallel(&per_io, self.threads, hw.seek_s);
        // Workers share one array: transfer/seek time serializes, plus the
        // head-switch seeks merge_parallel charged on top — both of which
        // the merged counters carry, so disk seconds derive from them.
        let io_s = merged_io.total_s();

        let mut cpu = CpuBreakdown::default();
        let mut max_morsel_cpu = 0.0f64;
        for o in &outcomes {
            cpu.add(&o.cpu);
            max_morsel_cpu = max_morsel_cpu.max(o.cpu.total());
        }
        // Makespan lower bound over any morsel→worker assignment.
        let mut cpu_crit = (cpu.total() / self.threads as f64).max(max_morsel_cpu);

        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut nrows = 0u64;
        let mut blocks = 0u64;
        match agg {
            None => {
                for mut o in outcomes {
                    nrows += o.nrows;
                    blocks += o.blocks;
                    rows.append(&mut o.rows);
                }
            }
            Some(plan) => {
                // Final merge + emission is a serial tail on one core.
                let partials: Vec<AggPartial> =
                    outcomes.into_iter().filter_map(|o| o.partial).collect();
                let merged = merge_partials(partials)?;
                let ctx = ExecContext::new(*hw, *sys, row_scale)?;
                let scan = spec.clone().with_row_range(0, 0).build(&ctx)?;
                let mut emitter =
                    Aggregate::new(scan, plan.group_by, plan.specs.clone(), plan.strategy, &ctx)?;
                emitter.install_partial(merged);
                if collect {
                    while let Some(b) = emitter.next()? {
                        blocks += 1;
                        rows.extend(b.rows()?);
                    }
                    nrows = rows.len() as u64;
                } else {
                    let (r, b) = drain(&mut emitter)?;
                    nrows = r;
                    blocks = b;
                }
                let tail = ctx.meter.borrow().breakdown(hw).scaled(row_scale);
                cpu_crit += tail.total();
                cpu.add(&tail);
            }
        }

        let overlapped = io_s.min(cpu_crit);
        let elapsed_s = io_s.max(cpu_crit) + DEFAULT_OVERLAP_LOSS * overlapped;
        let report = RunReport {
            rows: nrows,
            blocks,
            io: merged_io,
            cpu,
            elapsed_s,
        };
        // Merge the span trees the same way the accounting merged, then pin
        // the merged root to the final report (which additionally carries
        // the head-switch seek recharge and the serial aggregation tail).
        let trace = QueryTrace::merge_morsels(&traces).map(|mut t| {
            apply_report(&mut t, &report);
            t
        });
        Ok(ParallelOutcome {
            report,
            rows,
            cpu_crit_s: cpu_crit,
            wall_s: start.elapsed().as_secs_f64(),
            threads: self.threads,
            morsels: morsels.len(),
            trace,
        })
    }
}

/// Run one morsel on its own single-threaded context and detach the
/// `Send`-safe accounting.
#[allow(clippy::too_many_arguments)]
fn run_morsel(
    spec: &ScanSpec,
    agg: Option<&AggPlan>,
    hw: &HardwareConfig,
    sys: &SystemConfig,
    row_scale: f64,
    competing_scans: usize,
    range: (u64, u64),
    collect: bool,
    traced: bool,
) -> Result<MorselOutcome> {
    let mut ctx = ExecContext::new(*hw, *sys, row_scale)?;
    if traced {
        ctx = ctx.with_tracing();
    }
    for _ in 0..competing_scans {
        ctx.add_competing_scan();
    }
    let scan = spec.clone().with_row_range(range.0, range.1).build(&ctx)?;
    let mut out = MorselOutcome {
        rows: Vec::new(),
        nrows: 0,
        blocks: 0,
        io: IoStats::default(),
        cpu: CpuBreakdown::default(),
        partial: None,
        trace: None,
    };
    match agg {
        None => {
            let mut op = scan;
            if collect {
                while let Some(b) = op.next()? {
                    out.blocks += 1;
                    out.rows.extend(b.rows()?);
                }
                out.nrows = out.rows.len() as u64;
            } else {
                let (r, b) = drain(op.as_mut())?;
                out.nrows = r;
                out.blocks = b;
            }
        }
        Some(plan) => {
            let agg_op =
                Aggregate::new(scan, plan.group_by, plan.specs.clone(), plan.strategy, &ctx)?;
            let label = agg_op.label();
            out.partial = Some(record_block(&ctx, &label, SpanKind::Agg, move || {
                agg_op.into_partial()
            })?);
        }
    }
    ctx.settle_io_kernel_work();
    out.io = *ctx.disk.borrow().stats();
    out.cpu = ctx.meter.borrow().breakdown(hw).scaled(row_scale);
    let report = RunReport {
        rows: out.nrows,
        blocks: out.blocks,
        io: out.io,
        cpu: out.cpu,
        elapsed_s: out.io.total_s().max(out.cpu.total()),
    };
    out.trace = finish_query_trace(&ctx, &report);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect_rows;
    use crate::plan::ScanLayout;
    use crate::predicate::Predicate;
    use rodb_storage::{BuildLayouts, Table, TableBuilder};
    use rodb_types::{Column, Schema};
    use std::sync::Arc;

    fn table(n: usize) -> Arc<Table> {
        let s = Arc::new(Schema::new(vec![Column::int("a"), Column::int("b")]).unwrap());
        let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::both()).unwrap();
        for i in 0..n {
            b.push_row(&[
                rodb_types::Value::Int(i as i32),
                rodb_types::Value::Int((i % 9) as i32),
            ])
            .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn parallel_scan_matches_serial_order() {
        let t = table(10_000);
        let spec = ScanSpec::new(t.clone(), ScanLayout::Column, vec![0, 1])
            .with_predicates(vec![Predicate::lt(1, 4)]);
        let ctx = ExecContext::default_ctx();
        let mut serial = spec.clone().build(&ctx).unwrap();
        let want = collect_rows(&mut serial).unwrap();
        let out = ParallelExec::new(3)
            .run_collect(
                &spec,
                None,
                &HardwareConfig::default(),
                &SystemConfig::default(),
                1.0,
                0,
            )
            .unwrap();
        assert_eq!(out.rows, want);
        assert_eq!(out.report.rows, want.len() as u64);
        assert!(out.wall_s > 0.0);
        assert!(out.morsels >= 3);
    }

    #[test]
    fn zero_threads_rejected_and_empty_table_ok() {
        let t = table(100);
        let spec = ScanSpec::new(t, ScanLayout::Row, vec![0]);
        let hw = HardwareConfig::default();
        let sys = SystemConfig::default();
        assert!(ParallelExec::new(0)
            .run(&spec, None, &hw, &sys, 1.0, 0)
            .is_err());
    }
}
