//! The pipelined column-store table scanner (§2.2.2, Figure 4).
//!
//! "A column scanner consists of a series of pipelined scan nodes, as many as
//! the columns selected by the query. The deepest scan node starts reading
//! the column, creating {position, value} pairs for all qualified tuples. ...
//! Once the second-deepest scan node receives a block of tuples (containing
//! position pairs), it uses the position information to drive the inner
//! loop, examining values from the second column."
//!
//! Scan nodes that yield few qualifying tuples are pushed as deep as
//! possible; nodes with predicates re-write the surviving tuples (charged as
//! copies), nodes without predicates only attach their value.
//!
//! Two behavioural switches the paper studies are exposed here:
//! * [`ColumnScanMode::Slow`] serializes disk requests per column — the
//!   reference variant of Figure 11 that loses the "one step ahead"
//!   controller advantage.
//! * FOR-delta columns decode *every* stored code up to a needed position
//!   (Figure 9's CPU effect) — the page decode cache below does exactly
//!   that work and charges it.

use std::sync::Arc;

use rodb_compress::{Codec, ColumnCompression};
use rodb_io::{FileId, FileStream, PageRef};
use rodb_storage::{ColumnPage, ColumnStorage, QuarantinedPage, Table};
use rodb_types::{DataType, Error, OnCorrupt, Result, Schema};

use crate::block::TupleBlock;
use crate::codepred::{rewrite_all, zone_rejects};
use crate::degraded::{self, DropSet};
use crate::op::{ExecContext, Operator};
use crate::predicate::Predicate;

/// Disk-request submission behaviour (§4.5 / Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnScanMode {
    /// Normal pipelined scanner: submits the next column's request while the
    /// previous one is still being served ("one step ahead").
    #[default]
    Pipelined,
    /// Waits for each column's request to complete before submitting the
    /// next (the "slow" curve of Figure 11).
    Slow,
}

/// One scan node: a column file plus its predicates.
struct ColNode {
    col: usize,
    dtype: DataType,
    width: usize,
    comp: ColumnCompression,
    preds: Vec<Predicate>,
    /// Offset of this column in the output schema, if projected.
    out_col: Option<usize>,
    /// Storage handle for zone-map trailer peeks (catalog-resident metadata).
    storage: ColumnStorage,
    stream: FileStream,
    file_id: FileId,
    /// Corruption policy: under `Skip`, damaged pages this node only streams
    /// past are tolerated (quarantine is lazy — it happens when a requested
    /// position actually targets the bad page, so serial and parallel scans
    /// quarantine identical sets).
    policy: OnCorrupt,
    page: Option<PageRef>,
    page_first_row: u64,
    page_count: usize,
    /// Whole-page decode cache: filled for non-random-access codecs
    /// (FOR-delta must decode every prior code anyway) and, on the fast
    /// path, for any int column — block kernels make eager whole-page
    /// decode cheaper than per-position scalar `get()`.
    decoded: Vec<i32>,
    /// True when `decoded` serves reads for the current page.
    page_cached: bool,
    /// Vectorized fast path enabled ([`rodb_types::SystemConfig`]
    /// `scan_fast_path`).
    fast: bool,
    file_bytes: f64,
    // --- accumulated accounting, flushed in finish() ---
    values_decoded: u64,
    blocks_decoded: u64,
    vec_pred_evals: u64,
    gathered: u64,
    pages_skipped_z: u64,
    positions_seen: u64,
    pred_evals: u64,
    pred_passes: u64,
    values_written: u64,
}

impl ColNode {
    /// Whether this node eagerly materializes whole pages into `decoded`.
    fn eager(&self) -> bool {
        !self.comp.codec.random_access() || (self.fast && self.dtype == DataType::Int)
    }

    /// Make `pos` addressable: advance the stream to the page containing it.
    fn advance_to(&mut self, pos: u64) -> Result<()> {
        loop {
            if let Some(_p) = &self.page {
                if pos < self.page_first_row + self.page_count as u64 {
                    return Ok(());
                }
            }
            match self.stream.next_page() {
                Some(p) => {
                    let page_index = p.page_index as u64;
                    let vpp = self.storage.values_per_page.max(1) as u64;
                    // Boundaries come from file geometry, not a running sum of
                    // per-page counts: a damaged page still spans its slots.
                    self.page_first_row = page_index * vpp;
                    self.page_cached = false;
                    let page = match ColumnPage::new(p.bytes(), self.dtype) {
                        Ok(page) => page,
                        Err(e) => {
                            // Keep the damaged page with its geometric span so
                            // node state stays consistent either way: a
                            // position targeting it fails again on decode.
                            let is_target = pos < self.page_first_row + vpp;
                            self.page_count = vpp as usize;
                            self.page = Some(p);
                            if is_target || !degraded::should_skip(self.policy, &e) {
                                return Err(e.with_page_context(self.file_id.0, page_index));
                            }
                            continue;
                        }
                    };
                    let count = page.count();
                    self.page_count = count;
                    let is_target = pos < self.page_first_row + count as u64;
                    if !self.comp.codec.random_access() {
                        // FOR-delta: sequential decode of the entire page —
                        // even pages we only pass through (Figure 9's CPU
                        // effect). The fast path does the same work through
                        // the block kernels.
                        self.decoded.clear();
                        let pv = page.values(&self.comp);
                        if self.fast {
                            pv.decode_ints_into(&mut self.decoded)?;
                            self.blocks_decoded += count as u64;
                        } else {
                            let mut cur = pv.cursor();
                            for _ in 0..count {
                                self.decoded.push(cur.next_int()?);
                            }
                            self.values_decoded += count as u64;
                        }
                        self.page_cached = true;
                    } else if self.eager() && is_target {
                        // Fast path: block-decode the whole target page once;
                        // per-position reads become array lookups. Pages only
                        // streamed past are not decoded.
                        let pv = page.values(&self.comp);
                        pv.decode_ints_into(&mut self.decoded)?;
                        self.blocks_decoded += count as u64;
                        self.page_cached = true;
                    }
                    self.page = Some(p);
                }
                None => {
                    return Err(Error::corrupt(format!(
                        "position {pos} beyond column {} file",
                        self.col
                    )))
                }
            }
        }
    }

    /// Decode the value at `pos` into `out` (full declared width).
    fn read_raw(&mut self, pos: u64, out: &mut Vec<u8>) -> Result<()> {
        self.advance_to(pos)?;
        let slot = (pos - self.page_first_row) as usize;
        if self.page_cached {
            out.extend_from_slice(&self.decoded[slot].to_le_bytes());
            if self.eager() && self.comp.codec.random_access() {
                self.gathered += 1;
            }
        } else {
            let pref = self.page.as_ref().expect("advance_to ensures page");
            let page = ColumnPage::new(pref.bytes(), self.dtype)
                .map_err(|e| e.with_page_context(self.file_id.0, pref.page_index as u64))?;
            let pv = page.values(&self.comp);
            pv.write_raw(slot, out)?;
            self.values_decoded += 1;
        }
        Ok(())
    }

    /// Drain any unread pages (I/O cost only — a sequential scan reads the
    /// whole column file even when late positions never arrive).
    fn drain(&mut self) {
        while self.stream.next_page().is_some() {}
    }
}

/// Pending qualifying rows produced by node 0 and not yet emitted.
#[derive(Default)]
struct Pending {
    positions: Vec<u64>,
    /// Node-0 values, strided by node-0 width.
    values: Vec<u8>,
    taken: usize,
}

impl Pending {
    fn remaining(&self) -> usize {
        self.positions.len() - self.taken
    }
    fn reset_if_empty(&mut self) {
        if self.taken == self.positions.len() {
            self.positions.clear();
            self.values.clear();
            self.taken = 0;
        }
    }
}

/// Scans a table's column representation through pipelined scan nodes.
pub struct ColumnScanner {
    ctx: ExecContext,
    table: Arc<Table>,
    out_schema: Arc<Schema>,
    nodes: Vec<ColNode>,
    pending: Pending,
    node0_eof: bool,
    node0_next_row: u64,
    /// Row-ordinal window `[start, end)` this scanner is responsible for.
    range: (u64, u64),
    done: bool,
    mode: ColumnScanMode,
    scratch: Vec<u8>,
    /// Ordinal ranges dropped by degraded skips, shared by every scan node of
    /// this projection so columns never misalign.
    dropped: DropSet,
}

impl ColumnScanner {
    pub fn new(
        table: Arc<Table>,
        projection: Vec<usize>,
        predicates: Vec<Predicate>,
        mode: ColumnScanMode,
        ctx: &ExecContext,
    ) -> Result<ColumnScanner> {
        ColumnScanner::new_range(table, projection, predicates, mode, ctx, None)
    }

    /// Build a column scanner restricted to the row-ordinal range
    /// `[start, end)` — one morsel of a parallel scan. Every scan node's
    /// stream is clamped to the pages of its column holding the range, so a
    /// worker pays I/O only for its window. `None` scans the whole table.
    pub fn new_range(
        table: Arc<Table>,
        projection: Vec<usize>,
        predicates: Vec<Predicate>,
        mode: ColumnScanMode,
        ctx: &ExecContext,
        range: Option<(u64, u64)>,
    ) -> Result<ColumnScanner> {
        if projection.is_empty() {
            return Err(Error::InvalidPlan("empty projection".into()));
        }
        for p in &predicates {
            p.validate(&table.schema)?;
        }
        let out_schema = Arc::new(table.schema.project(&projection)?);
        let cs = table.col_storage()?;
        let range = match range {
            Some((s, e)) => (s.min(table.row_count), e.min(table.row_count)),
            None => (0, table.row_count),
        };

        // Node order: predicate columns first (deepest), in predicate order,
        // then remaining projected columns in projection order.
        let mut node_cols: Vec<usize> = Vec::new();
        for p in &predicates {
            if !node_cols.contains(&p.col) {
                node_cols.push(p.col);
            }
        }
        for &c in &projection {
            if !node_cols.contains(&c) {
                node_cols.push(c);
            }
        }

        let mut nodes = Vec::with_capacity(node_cols.len());
        let mut node0_first_row = 0u64;
        for &col in &node_cols {
            let storage = &cs.columns[col];
            let file_id = ctx.next_file_id();
            let mut stream = FileStream::new(
                ctx.disk.clone(),
                file_id,
                storage.file.clone(),
                storage.page_size,
            )?;
            // Clamp each node's stream to the pages of its column that hold
            // the row range (columns pack different value counts per page, so
            // the window is computed per column).
            let vpp = storage.values_per_page.max(1) as u64;
            let first_page = (range.0 / vpp) as usize;
            let end_page = ((range.1.div_ceil(vpp)) as usize)
                .min(storage.pages)
                .max(first_page);
            stream.set_window(first_page, end_page);
            if nodes.is_empty() {
                node0_first_row = first_page as u64 * vpp;
            }
            nodes.push(ColNode {
                col,
                dtype: table.schema.dtype(col),
                width: table.schema.dtype(col).width(),
                comp: storage.comp.clone(),
                preds: predicates
                    .iter()
                    .filter(|p| p.col == col)
                    .cloned()
                    .collect(),
                out_col: projection.iter().position(|&c| c == col),
                storage: storage.clone(),
                stream,
                file_id,
                policy: ctx.sys.on_corrupt,
                page: None,
                page_first_row: first_page as u64 * vpp,
                page_count: 0,
                decoded: Vec::new(),
                page_cached: false,
                fast: ctx.sys.scan_fast_path,
                file_bytes: ((end_page - first_page) * storage.page_size) as f64,
                values_decoded: 0,
                blocks_decoded: 0,
                vec_pred_evals: 0,
                gathered: 0,
                pages_skipped_z: 0,
                positions_seen: 0,
                pred_evals: 0,
                pred_passes: 0,
                values_written: 0,
            });
        }

        // Submission aggressiveness (§4.5): the pipelined scanner keeps the
        // next column's request in flight; the slow variant (and single-file
        // row scans) submit strictly one at a time.
        let interleave = match mode {
            ColumnScanMode::Pipelined if nodes.len() > 1 => 2,
            _ => 1,
        };
        ctx.disk.borrow_mut().set_interleave(interleave);

        Ok(ColumnScanner {
            ctx: ctx.clone(),
            table,
            out_schema,
            nodes,
            pending: Pending::default(),
            node0_eof: false,
            node0_next_row: node0_first_row,
            range,
            done: false,
            mode,
            scratch: Vec::new(),
            dropped: DropSet::default(),
        })
    }

    /// The submission mode this scanner was built with.
    pub fn mode(&self) -> ColumnScanMode {
        self.mode
    }

    /// Node 0: process one more page of the deepest column, appending
    /// qualifying {position, value} pairs to `pending`. Returns false at EOF.
    fn node0_fill(&mut self) -> Result<bool> {
        let node = &mut self.nodes[0];

        // Zone-map page skipping (fast path): the page trailer's min/max can
        // prove no value qualifies — skip the page without transferring it.
        if node.fast && !node.preds.is_empty() {
            let vpp = node.storage.values_per_page.max(1) as u64;
            loop {
                if node.stream.remaining() == 0 {
                    break;
                }
                match node.storage.zone_of(node.stream.peek_index()) {
                    Some((zmin, zmax)) if zone_rejects(&node.preds, zmin, zmax) => {
                        node.stream.skip_pages_zoned(1);
                        node.pages_skipped_z += 1;
                        // Full-page capacity; a short last page overshoots
                        // harmlessly past the range end.
                        self.node0_next_row += vpp;
                    }
                    _ => break,
                }
            }
        }

        let pref = match node.stream.next_page() {
            Some(p) => p,
            None => return Ok(false),
        };
        let page_index = pref.page_index as u64;
        let vpp = node.storage.values_per_page.max(1) as u64;
        // Ordinals come from file geometry: a skipped damaged page must not
        // shift the positions of every value after it.
        self.node0_next_row = page_index * vpp;
        let page = match ColumnPage::new(pref.bytes(), node.dtype) {
            Ok(page) => page,
            Err(e) if degraded::should_skip(node.policy, &e) => {
                // Degraded skip: quarantine the page and drop exactly the
                // ordinals it would hold by geometry.
                if self.table.quarantine.insert(QuarantinedPage::Col {
                    col: node.col,
                    page: page_index,
                }) {
                    self.ctx.disk.borrow_mut().note_quarantined(1);
                }
                let start = (page_index * vpp).max(self.range.0);
                let end = ((page_index + 1) * vpp).min(self.range.1);
                self.dropped.add(start, end);
                self.node0_next_row += vpp;
                return Ok(true);
            }
            Err(e) => return Err(e.with_page_context(node.file_id.0, page_index)),
        };
        let pv = page.values(&node.comp);
        let count = pv.count();
        let first_row = self.node0_next_row;

        if node.fast && node.dtype == DataType::Int {
            // Code-space evaluation: rewrite the predicates against this
            // page's compression metadata and filter on raw codes, decoding
            // only the survivors.
            let code_preds = if node.preds.is_empty() {
                None
            } else {
                rewrite_all(&node.preds, &node.comp, pv.base(), pv.code_base())
            };
            if let Some(cps) = code_preds {
                let base = pv.base();
                let code_base = pv.code_base() as usize;
                let dict_table = match &node.comp.codec {
                    Codec::Dict { .. } | Codec::DictFor { .. } => Some(pv.dict_int_table()?),
                    _ => None,
                };
                let mut block = [0u64; 128];
                let mut slot = 0usize;
                while slot < count {
                    let n = 128.min(count - slot);
                    pv.codes_block(slot, &mut block[..n])?;
                    for (k, &code) in block[..n].iter().enumerate() {
                        let pos = first_row + (slot + k) as u64;
                        if pos < self.range.0 || pos >= self.range.1 || self.dropped.contains(pos) {
                            continue;
                        }
                        if !cps.iter().all(|cp| cp.eval(code)) {
                            continue;
                        }
                        let v: i32 = match (&node.comp.codec, &dict_table) {
                            // PFOR codes arrive already exception-patched.
                            (Codec::For { .. } | Codec::Pfor { .. }, _) => {
                                (base + code as i64) as i32
                            }
                            (Codec::Dict { .. }, Some(t)) => {
                                *t.get(code as usize).ok_or_else(|| {
                                    Error::corrupt(format!(
                                        "dict code {code} out of table (col {})",
                                        node.col
                                    ))
                                })?
                            }
                            // Dict→FOR: stored codes are rebased by the
                            // page's minimum dictionary code.
                            (Codec::DictFor { .. }, Some(t)) => {
                                *t.get(code as usize + code_base).ok_or_else(|| {
                                    Error::corrupt(format!(
                                        "dictfor code {code}+{code_base} out of table (col {})",
                                        node.col
                                    ))
                                })?
                            }
                            // BitPack stores non-negative ints verbatim.
                            _ => code as i32,
                        };
                        node.positions_seen += 1;
                        node.gathered += 1;
                        self.pending.positions.push(pos);
                        self.pending.values.extend_from_slice(&v.to_le_bytes());
                    }
                    slot += n;
                }
                node.blocks_decoded += count as u64;
                node.vec_pred_evals += (count * node.preds.len()) as u64;
                self.node0_next_row += count as u64;
                return Ok(true);
            }

            // Value-space vectorized fallback (raw / FOR-delta / text-literal
            // predicates): block-decode the page, then a branchless filter
            // over the decoded ints.
            node.decoded.clear();
            pv.decode_ints_into(&mut node.decoded)?;
            node.blocks_decoded += count as u64;
            node.vec_pred_evals += (count * node.preds.len()) as u64;
            for slot in 0..count {
                let v = node.decoded[slot];
                let pos = first_row + slot as u64;
                if pos < self.range.0 || pos >= self.range.1 || self.dropped.contains(pos) {
                    continue;
                }
                if node.preds.iter().all(|p| p.eval_int(v)) {
                    node.positions_seen += 1;
                    node.gathered += 1;
                    self.pending.positions.push(pos);
                    self.pending.values.extend_from_slice(&v.to_le_bytes());
                }
            }
            self.node0_next_row += count as u64;
            return Ok(true);
        }

        let mut cur = pv.cursor();
        self.scratch.clear();
        for slot in 0..count {
            self.scratch.clear();
            cur.next_raw(&mut self.scratch)?;
            let pos = first_row + slot as u64;
            if pos < self.range.0 || pos >= self.range.1 || self.dropped.contains(pos) {
                // Boundary page of a morsel: slots outside the window belong
                // to a neighbouring worker (decode cost is still paid — the
                // cursor walked over them). Dropped ordinals were lost to a
                // quarantined page of another column.
                continue;
            }
            let mut pass = true;
            for p in &node.preds {
                node.pred_evals += 1;
                if p.eval_raw(node.dtype, &self.scratch) {
                    node.pred_passes += 1;
                } else {
                    pass = false;
                    break;
                }
            }
            if pass {
                node.positions_seen += 1; // {position, value} pair created
                self.pending.positions.push(pos);
                self.pending.values.extend_from_slice(&self.scratch);
            }
        }
        node.values_decoded += count as u64;
        self.node0_next_row += count as u64;
        Ok(true)
    }

    /// Flush accumulated accounting and drain remaining I/O.
    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dropped = self.dropped.total();
        if dropped > 0 {
            self.ctx.disk.borrow_mut().note_dropped_rows(dropped);
        }
        let hw = self.ctx.hw;
        let mut meter = self.ctx.meter.borrow_mut();
        for (ni, node) in self.nodes.iter_mut().enumerate() {
            node.drain();
            // CPU: decode + loop + predicates + position handling. Scalar and
            // block-kernel work are metered at their own rates.
            meter.decode(node.comp.codec.kind(), node.values_decoded as f64);
            meter.decode_block(node.comp.codec.kind(), node.blocks_decoded as f64);
            meter.col_iter(node.values_decoded.max(node.positions_seen) as f64);
            if !node.preds.is_empty() {
                meter.predicate(node.pred_evals as f64, node.pred_passes as f64);
                meter.vec_predicate(node.vec_pred_evals as f64);
            }
            meter.selvec_gather(node.gathered as f64);
            meter.position_pairs(node.positions_seen as f64);
            meter.project(
                node.values_written as f64,
                1.0,
                node.values_written as f64 * node.width as f64,
            );
            // Memory: node 0 streams its whole file (minus zone-skipped
            // pages, which were never transferred); driven nodes stream or
            // miss depending on how densely they touched it. FOR-delta nodes
            // touched everything (they decode all codes).
            let file_bytes =
                node.file_bytes - (node.pages_skipped_z as usize * node.storage.page_size) as f64;
            let decoded_all = (node.values_decoded + node.blocks_decoded) as f64;
            let touched = if ni == 0 {
                decoded_all
            } else {
                decoded_all.max(node.positions_seen as f64)
            };
            meter.memory_access(&hw, file_bytes.max(0.0), touched, node.width as f64);
        }
    }
}

impl Operator for ColumnScanner {
    fn schema(&self) -> &Arc<Schema> {
        &self.out_schema
    }

    fn label(&self) -> String {
        let mode = match self.mode {
            ColumnScanMode::Pipelined => "column",
            ColumnScanMode::Slow => "column-slow",
        };
        format!("scan[{mode}] {}", self.table.name)
    }

    fn next(&mut self) -> Result<Option<TupleBlock>> {
        if self.done {
            return Ok(None);
        }
        let block_cap = self.ctx.sys.block_tuples;
        loop {
            // Refill the pending pool from node 0.
            while !self.node0_eof && self.pending.remaining() < block_cap {
                if !self.node0_fill()? {
                    self.node0_eof = true;
                }
            }
            if self.pending.remaining() == 0 {
                self.finish();
                return Ok(None);
            }

            // Assemble one block from the next batch of pending pairs.
            let take = self.pending.remaining().min(block_cap);
            let node0_width = self.nodes[0].width;
            let node0_out = self.nodes[0].out_col;
            let mut block = TupleBlock::new(self.out_schema.clone(), take);
            for k in 0..take {
                let idx = self.pending.taken + k;
                let pos = self.pending.positions[idx];
                let bi = block.push_blank(pos);
                if let Some(oc) = node0_out {
                    let src = &self.pending.values[idx * node0_width..(idx + 1) * node0_width];
                    block.field_mut(bi, oc).copy_from_slice(src);
                    self.nodes[0].values_written += 1;
                }
            }
            self.pending.taken += take;
            self.pending.reset_if_empty();

            // Drive the remaining nodes off the position list.
            let mut keep_buf: Vec<usize> = Vec::new();
            for ni in 1..self.nodes.len() {
                if block.is_empty() {
                    break;
                }
                keep_buf.clear();
                let mut scratch = std::mem::take(&mut self.scratch);
                for i in 0..block.count() {
                    let pos = block.position(i).expect("scanners keep lineage");
                    if self.dropped.contains(pos) {
                        // Lost to a page another node quarantined after this
                        // position had already been produced.
                        continue;
                    }
                    scratch.clear();
                    let read = {
                        let node = &mut self.nodes[ni];
                        node.positions_seen += 1;
                        node.read_raw(pos, &mut scratch)
                    };
                    if let Err(e) = read {
                        if !degraded::should_skip(self.ctx.sys.on_corrupt, &e) {
                            self.scratch = scratch;
                            return Err(e);
                        }
                        // Degraded skip: the requested position targets a page
                        // bad on every replica. Quarantine it and drop the
                        // ordinals it holds by geometry.
                        let node = &self.nodes[ni];
                        let vpp = node.storage.values_per_page.max(1) as u64;
                        let page_index = pos / vpp;
                        if self.table.quarantine.insert(QuarantinedPage::Col {
                            col: node.col,
                            page: page_index,
                        }) {
                            self.ctx.disk.borrow_mut().note_quarantined(1);
                        }
                        let start = (page_index * vpp).max(self.range.0);
                        let end = ((page_index + 1) * vpp).min(self.range.1);
                        self.dropped.add(start, end);
                        continue;
                    }
                    let node = &mut self.nodes[ni];
                    let mut pass = true;
                    for p in &node.preds {
                        node.pred_evals += 1;
                        if p.eval_raw(node.dtype, &scratch) {
                            node.pred_passes += 1;
                        } else {
                            pass = false;
                            break;
                        }
                    }
                    if pass {
                        if let Some(oc) = node.out_col {
                            block.field_mut(i, oc).copy_from_slice(&scratch);
                            node.values_written += 1;
                        }
                        keep_buf.push(i);
                    }
                }
                self.scratch = scratch;
                if keep_buf.len() < block.count() {
                    // Predicate (or degraded) nodes re-write the surviving
                    // tuples (§2.2.2).
                    let moved = block.retain_indices(&keep_buf);
                    self.ctx.meter.borrow_mut().project(0.0, 0.0, moved as f64);
                }
            }

            if !block.is_empty() {
                let mut meter = self.ctx.meter.borrow_mut();
                // A block hop per scan node plus the hand-off to the parent.
                meter.block_calls(self.nodes.len() as f64);
                meter.stream_bytes(block.byte_len() as f64);
                return Ok(Some(block));
            }
            // Entire batch filtered out — continue with the next batch.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect_rows;
    use crate::predicate::CmpOp;
    use crate::scan_row::RowScanner;
    use rodb_compress::Codec;
    use rodb_storage::{BuildLayouts, TableBuilder};
    use rodb_types::{Column, Value};
    use std::sync::Arc;

    fn table(n: usize) -> Arc<Table> {
        let s = Arc::new(
            Schema::new(vec![
                Column::int("id"),
                Column::int("val"),
                Column::text("tag", 6),
                Column::int("qty"),
            ])
            .unwrap(),
        );
        let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::both()).unwrap();
        for i in 0..n {
            b.push_row(&[
                Value::Int(i as i32),
                Value::Int((i % 100) as i32),
                Value::text(["aa", "bb", "cc"][i % 3]),
                Value::Int((i % 7) as i32),
            ])
            .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn compressed_table(n: usize) -> Arc<Table> {
        let s = Arc::new(Schema::new(vec![Column::int("id"), Column::int("val")]).unwrap());
        let comps = vec![
            ColumnCompression::new(Codec::ForDelta { bits: 2 }, None).unwrap(),
            ColumnCompression::new(Codec::BitPack { bits: 7 }, None).unwrap(),
        ];
        let mut b =
            TableBuilder::with_compression("tz", s, 4096, BuildLayouts::column_only(), comps)
                .unwrap();
        for i in 0..n {
            b.push_row(&[Value::Int(i as i32), Value::Int((i % 100) as i32)])
                .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn matches_row_scanner_output() {
        let t = table(3000);
        for preds in [
            vec![],
            vec![Predicate::lt(1, 10)],
            vec![Predicate::lt(1, 50), Predicate::eq(2, "aa")],
            vec![Predicate::eq(2, "bb"), Predicate::ge(3, 3)],
        ] {
            for proj in [vec![0], vec![0, 1, 2, 3], vec![2, 0], vec![1, 3]] {
                let ctx = ExecContext::default_ctx();
                let mut cs = ColumnScanner::new(
                    t.clone(),
                    proj.clone(),
                    preds.clone(),
                    ColumnScanMode::Pipelined,
                    &ctx,
                )
                .unwrap();
                let col_rows = collect_rows(&mut cs).unwrap();
                let ctx2 = ExecContext::default_ctx();
                let mut rs =
                    RowScanner::new(t.clone(), proj.clone(), preds.clone(), &ctx2).unwrap();
                let row_rows = collect_rows(&mut rs).unwrap();
                assert_eq!(col_rows, row_rows, "proj {proj:?} preds {preds:?}");
            }
        }
    }

    #[test]
    fn predicate_on_unprojected_column() {
        let t = table(1000);
        let ctx = ExecContext::default_ctx();
        let mut cs = ColumnScanner::new(
            t,
            vec![0],
            vec![Predicate::lt(1, 10)],
            ColumnScanMode::Pipelined,
            &ctx,
        )
        .unwrap();
        let rows = collect_rows(&mut cs).unwrap();
        assert_eq!(rows.len(), 100);
        for r in &rows {
            assert!(r[0].as_int().unwrap() % 100 < 10);
        }
    }

    #[test]
    fn compressed_delta_column_scans_correctly() {
        let t = compressed_table(5000);
        let ctx = ExecContext::default_ctx();
        let mut cs = ColumnScanner::new(
            t,
            vec![0, 1],
            vec![Predicate::lt(1, 5)],
            ColumnScanMode::Pipelined,
            &ctx,
        )
        .unwrap();
        let rows = collect_rows(&mut cs).unwrap();
        assert_eq!(rows.len(), 250);
        for r in &rows {
            assert_eq!(r[0].as_int().unwrap() % 100, r[1].as_int().unwrap() % 100);
            assert!(r[1].as_int().unwrap() < 5);
        }
        // The delta column (driven node) decoded *every* code, not just 5%.
        let c = *ctx.meter.borrow().counters();
        assert!(c.uops > 0.0);
    }

    #[test]
    fn delta_as_driven_node_decodes_all_codes() {
        let t = compressed_table(5000);
        // Predicate on val (bit-packed) so the FOR-delta id column is driven.
        let run = |sel_lt: i32| {
            let ctx = ExecContext::default_ctx();
            let mut cs = ColumnScanner::new(
                t.clone(),
                vec![0],
                vec![Predicate::lt(1, sel_lt)],
                ColumnScanMode::Pipelined,
                &ctx,
            )
            .unwrap();
            let rows = collect_rows(&mut cs).unwrap();
            let uops = ctx.meter.borrow().counters().uops;
            (rows.len(), uops)
        };
        let (n_low, _uops_low) = run(1); // 1% selectivity
        let (n_high, _uops_high) = run(100); // 100%
        assert_eq!(n_low, 50);
        assert_eq!(n_high, 5000);
    }

    #[test]
    fn io_reads_only_selected_columns() {
        let t = table(5000);
        let cs_store = t.col_storage().unwrap();
        let one_col = cs_store.columns[0].byte_len() as f64;
        let ctx = ExecContext::default_ctx();
        let mut cs =
            ColumnScanner::new(t.clone(), vec![0], vec![], ColumnScanMode::Pipelined, &ctx)
                .unwrap();
        while cs.next().unwrap().is_some() {}
        let read = ctx.disk.borrow().stats().bytes_read;
        assert!((read - one_col).abs() < 1.0, "read {read} vs {one_col}");

        // Selecting more columns reads more bytes.
        let ctx2 = ExecContext::default_ctx();
        let mut cs2 = ColumnScanner::new(
            t.clone(),
            vec![0, 2],
            vec![],
            ColumnScanMode::Pipelined,
            &ctx2,
        )
        .unwrap();
        while cs2.next().unwrap().is_some() {}
        assert!(ctx2.disk.borrow().stats().bytes_read > read);
    }

    #[test]
    fn selectivity_does_not_change_io() {
        // Figure 7's premise: a selective filter leaves I/O untouched.
        let t = table(5000);
        let read_with = |preds: Vec<Predicate>| {
            let ctx = ExecContext::default_ctx();
            let mut cs = ColumnScanner::new(
                t.clone(),
                vec![0, 2],
                preds,
                ColumnScanMode::Pipelined,
                &ctx,
            )
            .unwrap();
            while cs.next().unwrap().is_some() {}
            let read = ctx.disk.borrow().stats().bytes_read;
            read
        };
        let full = read_with(vec![]);
        let sparse = read_with(vec![Predicate::lt(1, 1)]);
        // The predicate column adds its own file; compare like for like by
        // including it in both.
        let full2 = read_with(vec![Predicate::lt(1, 200)]);
        assert!((full2 - sparse).abs() < 1.0);
        assert!(sparse > full - 1.0);
    }

    #[test]
    fn multi_column_scan_seeks_more_than_single() {
        let t = table(20000);
        let seeks = |proj: Vec<usize>| {
            let ctx = ExecContext::default_ctx();
            let mut cs =
                ColumnScanner::new(t.clone(), proj, vec![], ColumnScanMode::Pipelined, &ctx)
                    .unwrap();
            while cs.next().unwrap().is_some() {}
            let seeks = ctx.disk.borrow().stats().seeks;
            seeks
        };
        assert!(seeks(vec![0, 1, 2, 3]) > seeks(vec![0]));
    }

    #[test]
    fn slow_mode_sets_strict_interleave() {
        let t = table(100);
        let ctx = ExecContext::default_ctx();
        let cs =
            ColumnScanner::new(t.clone(), vec![0, 1], vec![], ColumnScanMode::Slow, &ctx).unwrap();
        assert_eq!(cs.mode(), ColumnScanMode::Slow);
        // Behavioural check: under competition, slow mode is slower.
        let elapsed = |mode: ColumnScanMode| {
            let ctx = ExecContext::default_ctx();
            ctx.add_competing_scan();
            let mut cs =
                ColumnScanner::new(table(20000), vec![0, 1, 2, 3], vec![], mode, &ctx).unwrap();
            while cs.next().unwrap().is_some() {}
            let e = ctx.disk.borrow().elapsed();
            e
        };
        assert!(elapsed(ColumnScanMode::Slow) >= elapsed(ColumnScanMode::Pipelined));
    }

    #[test]
    fn empty_result_is_clean() {
        let t = table(1000);
        let ctx = ExecContext::default_ctx();
        let mut cs = ColumnScanner::new(
            t,
            vec![0],
            vec![Predicate::lt(1, -1)],
            ColumnScanMode::Pipelined,
            &ctx,
        )
        .unwrap();
        assert!(cs.next().unwrap().is_none());
        assert!(cs.next().unwrap().is_none());
    }

    fn fast_ctx() -> ExecContext {
        ExecContext::new(
            rodb_types::HardwareConfig::default(),
            rodb_types::SystemConfig::default().with_scan_fast_path(true),
            1.0,
        )
        .unwrap()
    }

    /// A table with a sorted FOR column (zone-map friendly), a small-domain
    /// dict-style bit-packed column, and a raw column.
    fn zoned_table(n: usize) -> Arc<Table> {
        let s = Arc::new(
            Schema::new(vec![
                Column::int("sorted"),
                Column::int("val"),
                Column::int("raw"),
            ])
            .unwrap(),
        );
        let comps = vec![
            ColumnCompression::new(Codec::For { bits: 20 }, None).unwrap(),
            ColumnCompression::new(Codec::BitPack { bits: 7 }, None).unwrap(),
            ColumnCompression::none(),
        ];
        let mut b =
            TableBuilder::with_compression("zt", s, 4096, BuildLayouts::column_only(), comps)
                .unwrap();
        for i in 0..n {
            b.push_row(&[
                Value::Int(1000 + i as i32),
                Value::Int((i % 100) as i32),
                Value::Int((i as i32) - 50),
            ])
            .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn fast_path_matches_slow_path_results() {
        for t in [table(3000), compressed_table(5000), zoned_table(4000)] {
            let ncols = t.schema.len();
            let pred_sets: Vec<Vec<Predicate>> = if ncols == 4 {
                vec![
                    vec![],
                    vec![Predicate::lt(1, 10)],
                    vec![Predicate::lt(1, 50), Predicate::eq(2, "aa")],
                ]
            } else if ncols == 3 {
                vec![
                    vec![],
                    vec![Predicate::lt(0, 1200)],
                    vec![Predicate::ge(0, 4600), Predicate::lt(1, 30)],
                    vec![Predicate::eq(1, 7)],
                    vec![Predicate::gt(2, 3800)],
                ]
            } else {
                vec![vec![Predicate::lt(1, 5)], vec![Predicate::eq(0, 4321)]]
            };
            for preds in pred_sets {
                let proj: Vec<usize> = (0..ncols).collect();
                let slow_ctx = ExecContext::default_ctx();
                let mut slow = ColumnScanner::new(
                    t.clone(),
                    proj.clone(),
                    preds.clone(),
                    ColumnScanMode::Pipelined,
                    &slow_ctx,
                )
                .unwrap();
                let slow_rows = collect_rows(&mut slow).unwrap();
                let fctx = fast_ctx();
                let mut fast = ColumnScanner::new(
                    t.clone(),
                    proj.clone(),
                    preds.clone(),
                    ColumnScanMode::Pipelined,
                    &fctx,
                )
                .unwrap();
                let fast_rows = collect_rows(&mut fast).unwrap();
                assert_eq!(fast_rows, slow_rows, "preds {preds:?}");
            }
        }
    }

    #[test]
    fn fast_path_reduces_modeled_cpu() {
        let t = zoned_table(20000);
        let run = |fast: bool| {
            let ctx = if fast {
                fast_ctx()
            } else {
                ExecContext::default_ctx()
            };
            let mut cs = ColumnScanner::new(
                t.clone(),
                vec![1, 2],
                vec![Predicate::lt(1, 1)], // 1% selectivity
                ColumnScanMode::Pipelined,
                &ctx,
            )
            .unwrap();
            let rows = collect_rows(&mut cs).unwrap();
            ctx.settle_io_kernel_work();
            let uops = ctx.meter.borrow().counters().uops;
            (rows.len(), uops)
        };
        let (n_slow, uops_slow) = run(false);
        let (n_fast, uops_fast) = run(true);
        assert_eq!(n_slow, n_fast);
        assert!(
            uops_fast * 2.0 <= uops_slow,
            "fast {uops_fast} vs slow {uops_slow}: expected >=2x reduction"
        );
    }

    #[test]
    fn zone_maps_skip_pages_on_sorted_column() {
        let t = zoned_table(20000);
        // sorted in [1000, 21000); select a narrow band near the top.
        let ctx = fast_ctx();
        let mut cs = ColumnScanner::new(
            t.clone(),
            vec![0],
            vec![Predicate::ge(0, 20600)],
            ColumnScanMode::Pipelined,
            &ctx,
        )
        .unwrap();
        let rows = collect_rows(&mut cs).unwrap();
        assert_eq!(rows.len(), 400);
        let disk = ctx.disk.borrow();
        let stats = disk.stats();
        let pages = t.col_storage().unwrap().columns[0].pages as u64;
        assert!(
            stats.pages_skipped * 10 >= pages * 9,
            "skipped {} of {} pages",
            stats.pages_skipped,
            pages
        );
        let fast_bytes = stats.bytes_read;
        drop(disk);

        // The scalar path reads every page.
        let ctx2 = ExecContext::default_ctx();
        let mut cs2 = ColumnScanner::new(
            t.clone(),
            vec![0],
            vec![Predicate::ge(0, 20600)],
            ColumnScanMode::Pipelined,
            &ctx2,
        )
        .unwrap();
        assert_eq!(collect_rows(&mut cs2).unwrap().len(), 400);
        assert_eq!(ctx2.disk.borrow().stats().pages_skipped, 0);
        assert!(ctx2.disk.borrow().stats().bytes_read > fast_bytes);
    }

    #[test]
    fn zone_boundary_equal_page_is_not_skipped() {
        // A constant column: every page zone is [min, max] with min == max.
        let s = Arc::new(Schema::new(vec![Column::int("c"), Column::int("id")]).unwrap());
        let comps = vec![
            ColumnCompression::new(Codec::For { bits: 1 }, None).unwrap(),
            ColumnCompression::none(),
        ];
        let mut b =
            TableBuilder::with_compression("ct", s, 4096, BuildLayouts::column_only(), comps)
                .unwrap();
        for i in 0..5000 {
            b.push_row(&[Value::Int(42), Value::Int(i)]).unwrap();
        }
        let t = Arc::new(b.finish().unwrap());
        let ctx = fast_ctx();
        // min == literal == max: Eq must not skip — every row matches.
        let mut cs = ColumnScanner::new(
            t.clone(),
            vec![1],
            vec![Predicate::eq(0, 42)],
            ColumnScanMode::Pipelined,
            &ctx,
        )
        .unwrap();
        assert_eq!(collect_rows(&mut cs).unwrap().len(), 5000);
        assert_eq!(ctx.disk.borrow().stats().pages_skipped, 0);
        // Ne on the constant value skips every data page.
        let ctx2 = fast_ctx();
        let mut cs2 = ColumnScanner::new(
            t,
            vec![1],
            vec![Predicate::new(0, CmpOp::Ne, Value::Int(42))],
            ColumnScanMode::Pipelined,
            &ctx2,
        )
        .unwrap();
        assert!(collect_rows(&mut cs2).unwrap().is_empty());
        assert!(ctx2.disk.borrow().stats().pages_skipped > 0);
    }

    #[test]
    fn fast_path_matches_on_morsel_ranges() {
        let t = zoned_table(7000);
        let preds = vec![Predicate::ge(0, 3000), Predicate::lt(1, 40)];
        for range in [(0u64, 7000u64), (1000, 2500), (2500, 7000), (6900, 7000)] {
            let run = |fast: bool| {
                let ctx = if fast {
                    fast_ctx()
                } else {
                    ExecContext::default_ctx()
                };
                let mut cs = ColumnScanner::new_range(
                    t.clone(),
                    vec![0, 1, 2],
                    preds.clone(),
                    ColumnScanMode::Pipelined,
                    &ctx,
                    Some(range),
                )
                .unwrap();
                collect_rows(&mut cs).unwrap()
            };
            assert_eq!(run(true), run(false), "range {range:?}");
        }
    }

    #[test]
    fn rejects_bad_plans() {
        let t = table(10);
        let ctx = ExecContext::default_ctx();
        assert!(
            ColumnScanner::new(t.clone(), vec![], vec![], ColumnScanMode::Pipelined, &ctx).is_err()
        );
        assert!(ColumnScanner::new(t, vec![9], vec![], ColumnScanMode::Pipelined, &ctx).is_err());
    }
}
