//! Shared circular scan cursors: many concurrent queries over one table
//! ride a single physical scan (§2.1.1's scan sharing, generalized from
//! the row-plain teaching model in [`crate::scan_shared`] to the column
//! layout, per-query aggregation, and the page cache).
//!
//! The cursor walks the table's page-aligned segments in a circle. Queries
//! *attach* at whatever segment the cursor is currently on — a late
//! arrival joins mid-scan, rides to the end of the table, and completes
//! its missed prefix after the cursor wraps around. Each segment visit
//! runs:
//!
//! 1. **One driver pass** — a serial scan of the union of all attached
//!    queries' columns (projection ∪ predicate inputs), with no
//!    predicates, optionally through a shared page cache. This is the only
//!    I/O the segment charges: one file pass per wraparound cycle no
//!    matter how many queries ride it.
//! 2. **Per-query work** off the shared stream — each query's predicates,
//!    projection and partial aggregation over the segment, executed as
//!    single-task jobs on one [`TaskScheduler`] pool. Their simulated I/O
//!    is discarded (the driver already paid it); their CPU is charged in
//!    full per query. That is deliberately conservative: the paper's
//!    shared-scan model amortizes predicate evaluation too, but here
//!    every query keeps its exact solo kernel costs so results and
//!    per-query CPU attribution stay bit-identical to solo runs.
//!
//! Per-segment results are stored by *segment index* and reassembled in
//! segment order `0..S` at completion, so a wrapped query's rows come out
//! in exactly the order its solo scan would have produced. Aggregation
//! partials merge in the same order and emit through
//! [`crate::sched::emit_aggregate`], matching the parallel-equals-serial
//! guarantee of the morsel executor. All merges are indexed, never
//! arrival- or worker-ordered, so a cursor run is deterministic across
//! worker counts.

use std::sync::Arc;

use rodb_io::{IoStats, SharedPageCache};
use rodb_storage::Table;
use rodb_types::{Error, HardwareConfig, Result, SystemConfig, Value};

use crate::agg::{merge_partials, AggPartial};
use crate::exec::DEFAULT_OVERLAP_LOSS;
use crate::op::{drain, ExecContext};
use crate::par::AggPlan;
use crate::plan::{ScanLayout, ScanSpec};
use crate::predicate::Predicate;
use crate::sched::{emit_aggregate, QueryJob, TaskScheduler};

/// Cursor-level knobs (the service derives these from
/// [`rodb_types::ServiceSpec`]).
#[derive(Debug, Clone, Copy)]
pub struct SharedCursorConfig {
    /// Desired segment count; the actual count is the page-aligned morsel
    /// split the table produces for it (at most one segment per page run).
    pub segments: usize,
    /// Worker pool width for the per-query segment jobs.
    pub workers: usize,
}

/// One query as the cursor sees it: the per-query half of a plan applied
/// off the shared stream.
#[derive(Debug, Clone)]
pub struct CursorQuery {
    /// Caller's correlation id, echoed in [`QueryDone`].
    pub token: usize,
    pub projection: Vec<usize>,
    pub predicates: Vec<Predicate>,
    pub agg: Option<AggPlan>,
    /// Materialize result rows (vs measurement-only).
    pub collect: bool,
}

/// A completed query, its results reassembled in table order.
#[derive(Debug, Clone)]
pub struct QueryDone {
    pub token: usize,
    pub rows: Vec<Vec<Value>>,
    pub nrows: u64,
    pub blocks: u64,
    /// Segment index the query attached at.
    pub attach_seg: usize,
    /// Whether completion required riding past the wraparound point.
    pub wrapped: bool,
    /// CPU seconds this query was charged across all its segments
    /// (including its share-free serial aggregation tail).
    pub cpu_s: f64,
}

/// What one segment visit cost and completed.
#[derive(Debug, Clone)]
pub struct SegmentStep {
    /// Segment index that was scanned.
    pub segment: usize,
    /// Modelled elapsed seconds of the visit (driver I/O overlapped with
    /// the per-query CPU critical path, plus serial emission tails).
    pub elapsed_s: f64,
    /// The driver pass's I/O — the only I/O charged for the segment.
    pub driver_io: IoStats,
    /// Queries that completed their full cycle on this visit, in attach
    /// order.
    pub done: Vec<QueryDone>,
    /// Whether advancing past this segment wrapped the cursor head.
    pub wrapped: bool,
}

struct ActiveQuery {
    q: CursorQuery,
    attach_seg: usize,
    visited: usize,
    rows_by_seg: Vec<Option<Vec<Vec<Value>>>>,
    partial_by_seg: Vec<Option<AggPartial>>,
    nrows: u64,
    blocks: u64,
    cpu_s: f64,
}

/// A circular shared scan over one `(table, layout)` pair.
pub struct SharedCursor {
    table: Arc<Table>,
    layout: ScanLayout,
    hw: HardwareConfig,
    sys: SystemConfig,
    row_scale: f64,
    workers: usize,
    cache: Option<SharedPageCache>,
    segments: Vec<(u64, u64)>,
    pos: usize,
    active: Vec<ActiveQuery>,
    io: IoStats,
    cycles: u64,
}

impl SharedCursor {
    /// Build a cursor. Only the [`ScanLayout::Row`] and
    /// [`ScanLayout::Column`] layouts support range-restricted segment
    /// scans; the single-iterator teaching variants are rejected up front
    /// with the same message the service surfaces.
    pub fn new(
        table: Arc<Table>,
        layout: ScanLayout,
        cfg: SharedCursorConfig,
        hw: HardwareConfig,
        sys: SystemConfig,
        row_scale: f64,
        cache: Option<SharedPageCache>,
    ) -> Result<SharedCursor> {
        if !matches!(layout, ScanLayout::Row | ScanLayout::Column) {
            return Err(Error::InvalidPlan(format!(
                "shared cursor supports the Row and Column layouts, not {layout:?}"
            )));
        }
        if cfg.workers == 0 {
            return Err(Error::InvalidPlan("shared cursor with 0 workers".into()));
        }
        let segments: Vec<(u64, u64)> = table
            .morsels(cfg.segments.max(1))
            .iter()
            .map(|m| (m.start, m.end))
            .collect();
        if segments.is_empty() {
            return Err(Error::InvalidPlan("shared cursor over empty table".into()));
        }
        Ok(SharedCursor {
            table,
            layout,
            hw,
            sys,
            row_scale,
            workers: cfg.workers,
            cache,
            segments,
            pos: 0,
            active: Vec::new(),
            io: IoStats::default(),
            cycles: 0,
        })
    }

    /// Attach a query at the cursor's current position; returns the attach
    /// segment index. The query completes after visiting all segments —
    /// one full circle.
    pub fn attach(&mut self, q: CursorQuery) -> usize {
        let s = self.segments.len();
        let attach_seg = self.pos;
        self.active.push(ActiveQuery {
            q,
            attach_seg,
            visited: 0,
            rows_by_seg: (0..s).map(|_| None).collect(),
            partial_by_seg: (0..s).map(|_| None).collect(),
            nrows: 0,
            blocks: 0,
            cpu_s: 0.0,
        });
        attach_seg
    }

    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Current head position (the segment the next [`SharedCursor::step`]
    /// scans, and where the next attach lands).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Completed head revolutions.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Accumulated driver-pass I/O (the cursor's total charged I/O,
    /// including page-cache counters when a shared cache is installed).
    pub fn io_stats(&self) -> IoStats {
        self.io
    }

    /// Scan the current segment for every attached query, advance the
    /// head, and return the visit's cost plus any completions.
    pub fn step(&mut self) -> Result<SegmentStep> {
        if self.active.is_empty() {
            return Err(Error::InvalidPlan(
                "shared cursor step with no attached queries".into(),
            ));
        }
        let seg_idx = self.pos;
        let (start, end) = self.segments[seg_idx];

        // 1. Driver pass: union projection, no predicates, I/O charged
        // once. The driver's *scan* CPU is not charged (each query already
        // pays its own full kernel costs below); only the kernel-side I/O
        // work of the bytes it actually moved is.
        let mut union_cols: Vec<usize> = self
            .active
            .iter()
            .flat_map(|a| {
                a.q.projection
                    .iter()
                    .copied()
                    .chain(a.q.predicates.iter().map(|p| p.col))
            })
            .collect();
        union_cols.sort_unstable();
        union_cols.dedup();
        let ctx = ExecContext::new(self.hw, self.sys, self.row_scale)?;
        if let Some(cache) = &self.cache {
            ctx.disk.borrow_mut().set_page_cache(cache.clone());
        }
        let spec =
            ScanSpec::new(self.table.clone(), self.layout, union_cols).with_row_range(start, end);
        let mut op = spec.build(&ctx)?;
        drain(op.as_mut())?;
        let before_settle = ctx
            .meter
            .borrow()
            .breakdown(&self.hw)
            .scaled(self.row_scale);
        ctx.settle_io_kernel_work();
        let after_settle = ctx
            .meter
            .borrow()
            .breakdown(&self.hw)
            .scaled(self.row_scale);
        let driver_kernel_s = after_settle.total() - before_settle.total();
        let driver_io = *ctx.disk.borrow().stats();
        self.io.merge(&driver_io);

        // 2. Per-query segment jobs on the shared pool. Simulated I/O of
        // these jobs is discarded — the driver pass above already paid it.
        let jobs: Vec<QueryJob> = self
            .active
            .iter()
            .map(|a| {
                let spec = ScanSpec::new(self.table.clone(), self.layout, a.q.projection.clone())
                    .with_predicates(a.q.predicates.clone())
                    .with_row_range(start, end);
                let mut j = QueryJob::new(spec, a.q.agg.clone(), self.hw, self.sys);
                j.row_scale = self.row_scale;
                j.collect = a.q.collect && a.q.agg.is_none();
                j.emit = false;
                j
            })
            .collect();
        let outs = TaskScheduler::new(self.workers).run_jobs(&jobs)?;

        let mut cpu_sum = driver_kernel_s;
        for (a, out) in self.active.iter_mut().zip(outs) {
            let q_cpu = out.report.cpu.total();
            cpu_sum += q_cpu;
            a.cpu_s += q_cpu;
            if a.q.agg.is_some() {
                a.partial_by_seg[seg_idx] = out.partial;
            } else {
                a.nrows += out.report.rows;
                a.blocks += out.report.blocks;
                if a.q.collect {
                    a.rows_by_seg[seg_idx] = Some(out.rows);
                }
            }
            a.visited += 1;
        }
        // The modeled clock charges per-query CPU serially — the paper's
        // testbed is single-core, and a worker-invariant clock keeps the
        // whole service schedule (attach points, wraparounds, admission)
        // bit-identical across pool sizes. `workers` parallelizes the real
        // wall time of the segment jobs, never the simulated clock.
        let mut cpu_crit = cpu_sum;

        // 3. Completions: full circle ridden. Reassemble in segment order
        // 0..S — table order, independent of attach point.
        let nsegs = self.segments.len();
        let mut done = Vec::new();
        let mut finished: Vec<ActiveQuery> = Vec::new();
        self.active.retain_mut(|a| {
            if a.visited == nsegs {
                finished.push(ActiveQuery {
                    q: a.q.clone(),
                    attach_seg: a.attach_seg,
                    visited: a.visited,
                    rows_by_seg: std::mem::take(&mut a.rows_by_seg),
                    partial_by_seg: std::mem::take(&mut a.partial_by_seg),
                    nrows: a.nrows,
                    blocks: a.blocks,
                    cpu_s: a.cpu_s,
                });
                false
            } else {
                true
            }
        });
        for mut a in finished {
            let mut rows: Vec<Vec<Value>> = Vec::new();
            let mut nrows = a.nrows;
            let mut blocks = a.blocks;
            let mut cpu_s = a.cpu_s;
            match &a.q.agg {
                None => {
                    for slot in a.rows_by_seg.iter_mut() {
                        if let Some(mut r) = slot.take() {
                            rows.append(&mut r);
                        }
                    }
                }
                Some(plan) => {
                    let partials: Vec<AggPartial> = a
                        .partial_by_seg
                        .iter_mut()
                        .filter_map(Option::take)
                        .collect();
                    let merged = merge_partials(partials)?;
                    let spec =
                        ScanSpec::new(self.table.clone(), self.layout, a.q.projection.clone())
                            .with_predicates(a.q.predicates.clone());
                    // Final merge + emission is a serial tail on one core.
                    let (r, n, b, tail) = emit_aggregate(
                        &spec,
                        plan,
                        &self.hw,
                        &self.sys,
                        self.row_scale,
                        merged,
                        a.q.collect,
                    )?;
                    rows = r;
                    nrows = n;
                    blocks += b;
                    cpu_s += tail.total();
                    cpu_crit += tail.total();
                }
            }
            done.push(QueryDone {
                token: a.q.token,
                rows,
                nrows,
                blocks,
                attach_seg: a.attach_seg,
                wrapped: a.attach_seg != 0,
                cpu_s,
            });
        }

        // 4. Advance the head.
        self.pos = (self.pos + 1) % nsegs;
        let wrapped = self.pos == 0;
        if wrapped {
            self.cycles += 1;
        }

        let io_s = driver_io.total_s();
        let overlapped = io_s.min(cpu_crit);
        let elapsed_s = io_s.max(cpu_crit) + DEFAULT_OVERLAP_LOSS * overlapped;
        Ok(SegmentStep {
            segment: seg_idx,
            elapsed_s,
            driver_io,
            done,
            wrapped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggSpec, AggStrategy};
    use crate::op::collect_rows;
    use crate::par::ParallelExec;
    use rodb_storage::{BuildLayouts, TableBuilder};
    use rodb_types::{Column, Schema};

    fn table(n: usize) -> Arc<Table> {
        let s = Arc::new(Schema::new(vec![Column::int("a"), Column::int("b")]).unwrap());
        let mut b = TableBuilder::new("t", s, 4096, BuildLayouts::both()).unwrap();
        for i in 0..n {
            b.push_row(&[
                rodb_types::Value::Int(i as i32),
                rodb_types::Value::Int((i % 9) as i32),
            ])
            .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn cursor(t: &Arc<Table>, layout: ScanLayout, workers: usize) -> SharedCursor {
        SharedCursor::new(
            t.clone(),
            layout,
            SharedCursorConfig {
                segments: 4,
                workers,
            },
            HardwareConfig::default(),
            SystemConfig::default(),
            1.0,
            None,
        )
        .unwrap()
    }

    fn q(token: usize, pred: Option<Predicate>) -> CursorQuery {
        CursorQuery {
            token,
            projection: vec![0, 1],
            predicates: pred.into_iter().collect(),
            agg: None,
            collect: true,
        }
    }

    fn solo_rows(t: &Arc<Table>, layout: ScanLayout, cq: &CursorQuery) -> Vec<Vec<Value>> {
        let ctx = ExecContext::default_ctx();
        let mut op = ScanSpec::new(t.clone(), layout, cq.projection.clone())
            .with_predicates(cq.predicates.clone())
            .build(&ctx)
            .unwrap();
        collect_rows(&mut op).unwrap()
    }

    #[test]
    fn late_attach_wraps_and_matches_solo_order() {
        let t = table(12_000);
        let mut c = cursor(&t, ScanLayout::Column, 2);
        assert!(c.segment_count() >= 4);
        let q0 = q(0, Some(Predicate::lt(1, 4)));
        let q1 = q(1, Some(Predicate::eq(0, 7_777)));
        c.attach(q0.clone());
        let first = c.step().unwrap();
        assert!(first.done.is_empty());
        assert!(first.elapsed_s > 0.0);
        // q1 arrives mid-scan: it must wrap to finish.
        let attach = c.attach(q1.clone());
        assert_eq!(attach, 1);
        let mut done = Vec::new();
        for _ in 0..c.segment_count() {
            done.extend(c.step().unwrap().done);
        }
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].token, 0);
        assert!(!done[0].wrapped);
        assert_eq!(done[1].token, 1);
        assert!(done[1].wrapped);
        assert_eq!(done[1].attach_seg, 1);
        assert_eq!(done[0].rows, solo_rows(&t, ScanLayout::Column, &q0));
        assert_eq!(done[1].rows, solo_rows(&t, ScanLayout::Column, &q1));
        assert_eq!(c.active_count(), 0);
        assert_eq!(c.cycles(), 1);
    }

    #[test]
    fn one_driver_pass_per_cycle_regardless_of_query_count() {
        let t = table(10_000);
        for k in [1usize, 4] {
            let mut c = cursor(&t, ScanLayout::Row, 1);
            for i in 0..k {
                c.attach(q(i, None));
            }
            for _ in 0..c.segment_count() {
                c.step().unwrap();
            }
            let per_cycle = c.io_stats().bytes_read;
            // Bytes charged for a cycle are the driver's single pass —
            // identical for 1 or 4 riders of the same projection.
            let mut solo = cursor(&t, ScanLayout::Row, 1);
            solo.attach(q(0, None));
            for _ in 0..solo.segment_count() {
                solo.step().unwrap();
            }
            assert_eq!(per_cycle, solo.io_stats().bytes_read, "k={k}");
        }
    }

    #[test]
    fn aggregate_through_wraparound_matches_parallel_exec() {
        let t = table(9_000);
        let plan = AggPlan {
            group_by: Some(1),
            specs: vec![AggSpec::count(), AggSpec::sum(0)],
            strategy: AggStrategy::Hash,
        };
        let mut c = cursor(&t, ScanLayout::Column, 2);
        // Burn one step with a placeholder so the agg query attaches late.
        c.attach(q(9, None));
        c.step().unwrap();
        c.attach(CursorQuery {
            token: 1,
            projection: vec![0, 1],
            predicates: vec![Predicate::lt(0, 8_000)],
            agg: Some(plan.clone()),
            collect: true,
        });
        let mut agg_done = None;
        for _ in 0..c.segment_count() {
            for d in c.step().unwrap().done {
                if d.token == 1 {
                    agg_done = Some(d);
                }
            }
        }
        let d = agg_done.unwrap();
        assert!(d.wrapped);
        let spec = ScanSpec::new(t.clone(), ScanLayout::Column, vec![0, 1])
            .with_predicates(vec![Predicate::lt(0, 8_000)]);
        let want = ParallelExec::new(2)
            .run_collect(
                &spec,
                Some(&plan),
                &HardwareConfig::default(),
                &SystemConfig::default(),
                1.0,
                0,
            )
            .unwrap();
        assert_eq!(d.rows, want.rows);
    }

    #[test]
    fn steps_are_deterministic_across_worker_counts() {
        let t = table(8_000);
        let run = |workers: usize| {
            let mut c = cursor(&t, ScanLayout::Column, workers);
            c.attach(q(0, Some(Predicate::lt(1, 5))));
            c.attach(q(1, None));
            let mut elapsed = Vec::new();
            let mut rows = Vec::new();
            for _ in 0..c.segment_count() {
                let s = c.step().unwrap();
                elapsed.push(s.elapsed_s);
                for d in s.done {
                    rows.push((d.token, d.rows, d.cpu_s));
                }
            }
            (elapsed, rows, c.io_stats())
        };
        let (e1, r1, io1) = run(1);
        let (e3, r3, io3) = run(3);
        // Rows and I/O are bit-identical; elapsed differs only through the
        // worker count in the critical-path division, so compare at 1
        // worker vs itself and rows across counts.
        assert_eq!(r1.len(), 2);
        assert_eq!(
            r1.iter()
                .map(|(t, r, _)| (*t, r.clone()))
                .collect::<Vec<_>>(),
            r3.iter()
                .map(|(t, r, _)| (*t, r.clone()))
                .collect::<Vec<_>>()
        );
        assert_eq!(io1, io3);
        assert_eq!(e1.len(), e3.len());
        let (e1b, r1b, io1b) = run(1);
        assert_eq!(e1, e1b);
        assert_eq!(io1, io1b);
        assert_eq!(
            r1.iter().map(|(t, _, c)| (*t, *c)).collect::<Vec<_>>(),
            r1b.iter().map(|(t, _, c)| (*t, *c)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejects_unsupported_layouts_and_empty_steps() {
        let t = table(100);
        let err = SharedCursor::new(
            t.clone(),
            ScanLayout::ColumnSlow,
            SharedCursorConfig {
                segments: 2,
                workers: 1,
            },
            HardwareConfig::default(),
            SystemConfig::default(),
            1.0,
            None,
        )
        .err()
        .unwrap();
        assert!(format!("{err}").contains("Row and Column"));
        let mut c = cursor(&t, ScanLayout::Row, 1);
        assert!(c.step().is_err());
    }
}
