//! Non-pipelined, single-iterator column scanner (§4.2's suggested
//! optimization, out of the paper's measured scope — implemented here as an
//! extension for the ablation study).
//!
//! "It first fetches disk pages from all scanned columns into memory. Then,
//! it uses memory offsets to access all attributes within the same row,
//! iterating over entire rows, similarly to a row store. This architecture
//! is similar to PAX and MonetDB."
//!
//! Compared with the pipelined scanner it pays **no position-pair overhead**,
//! but it decodes *every* value of *every* selected column regardless of
//! selectivity — better at high selectivity, worse at low.

use std::sync::Arc;

use rodb_io::{FileId, FileStream, PageRef};
use rodb_storage::{ColumnPage, QuarantinedPage, Table};
use rodb_types::{CorruptKind, DataType, Error, OnCorrupt, Result, Schema};

use crate::block::TupleBlock;
use crate::degraded::{self, DropSet};
use crate::op::{ExecContext, Operator};
use crate::predicate::Predicate;

struct ColCursor {
    col: usize,
    dtype: DataType,
    width: usize,
    comp: rodb_compress::ColumnCompression,
    preds: Vec<Predicate>,
    out_col: Option<usize>,
    stream: FileStream,
    file_id: FileId,
    policy: OnCorrupt,
    /// Full-page value capacity — the geometric page → ordinal unit.
    vpp: u64,
    page: Option<PageRef>,
    page_first_row: u64,
    page_count: usize,
    /// Current page was bad on every replica (its span is geometric).
    page_bad: bool,
    /// All values of the current page, decoded eagerly (raw full-width bytes,
    /// strided by `width`).
    decoded: Vec<u8>,
    /// Fast path: int scratch for the block-decode kernels.
    ints: Vec<i32>,
    /// Fast path: per-slot predicate verdict for the current page, computed
    /// in one vectorized pass at page load.
    pass_map: Vec<bool>,
    /// Vectorized fast path enabled (`scan_fast_path`).
    fast: bool,
    file_bytes: f64,
    values_decoded: u64,
    blocks_decoded: u64,
    vec_pred_evals: u64,
    pred_evals: u64,
    pred_passes: u64,
    values_written: u64,
}

impl ColCursor {
    /// Whether predicate verdicts come from the page-load `pass_map`.
    #[inline]
    fn vectorized(&self) -> bool {
        self.fast && self.dtype == DataType::Int && !self.preds.is_empty()
    }

    fn load_page_for(&mut self, pos: u64) -> Result<()> {
        loop {
            if self.page.is_some() && pos < self.page_first_row + self.page_count as u64 {
                if self.page_bad {
                    // Re-entry into a page already found bad: every one of
                    // its rows fails identically (the scanner drops them).
                    return Err(Error::corrupt_kind(
                        CorruptKind::Checksum,
                        "page bad on every replica",
                    )
                    .with_page_context(self.file_id.0, self.page_first_row / self.vpp));
                }
                return Ok(());
            }
            let p = self.stream.next_page().ok_or_else(|| {
                Error::corrupt(format!("row {pos} beyond column {} file", self.col))
            })?;
            let page_index = p.page_index as u64;
            // Boundaries come from file geometry, not a running sum of
            // per-page counts: a damaged page still spans its slots.
            self.page_first_row = page_index * self.vpp;
            let page = match ColumnPage::new(p.bytes(), self.dtype) {
                Ok(page) => page,
                Err(e) => {
                    let is_target = pos < self.page_first_row + self.vpp;
                    self.page_count = self.vpp as usize;
                    self.page = Some(p);
                    self.page_bad = true;
                    self.decoded.clear();
                    if is_target || !degraded::should_skip(self.policy, &e) {
                        return Err(e.with_page_context(self.file_id.0, page_index));
                    }
                    // Pass-through damage under `Skip`: the rows demanding
                    // this page were already dropped by another column.
                    continue;
                }
            };
            let count = page.count();
            // Eager whole-page decode — the defining trait of this scanner.
            self.decoded.clear();
            self.decoded.reserve(count * self.width);
            let pv = page.values(&self.comp);
            if self.fast && self.dtype == DataType::Int {
                // Block-kernel decode plus one vectorized predicate pass.
                pv.decode_ints_into(&mut self.ints)?;
                for v in &self.ints {
                    self.decoded.extend_from_slice(&v.to_le_bytes());
                }
                self.blocks_decoded += count as u64;
                if !self.preds.is_empty() {
                    self.pass_map.clear();
                    let preds = &self.preds;
                    self.pass_map.extend(
                        self.ints
                            .iter()
                            .map(|&v| preds.iter().all(|p| p.eval_int(v))),
                    );
                    self.vec_pred_evals += (count * self.preds.len()) as u64;
                }
            } else {
                let mut cur = pv.cursor();
                for _ in 0..count {
                    cur.next_raw(&mut self.decoded)?;
                }
                self.values_decoded += count as u64;
            }
            self.page_count = count;
            self.page = Some(p);
            self.page_bad = false;
        }
    }

    #[inline]
    fn raw_at(&self, pos: u64) -> &[u8] {
        let slot = (pos - self.page_first_row) as usize;
        &self.decoded[slot * self.width..(slot + 1) * self.width]
    }
}

/// PAX/MonetDB-style column scanner: row-at-a-time over eagerly decoded
/// column pages.
pub struct SingleIteratorColumnScanner {
    ctx: ExecContext,
    table: Arc<Table>,
    out_schema: Arc<Schema>,
    cursors: Vec<ColCursor>,
    row_count: u64,
    next_row: u64,
    done: bool,
    /// Ordinal ranges dropped by degraded skips, shared across the cursors.
    dropped: DropSet,
}

impl SingleIteratorColumnScanner {
    pub fn new(
        table: Arc<Table>,
        projection: Vec<usize>,
        predicates: Vec<Predicate>,
        ctx: &ExecContext,
    ) -> Result<SingleIteratorColumnScanner> {
        if projection.is_empty() {
            return Err(Error::InvalidPlan("empty projection".into()));
        }
        for p in &predicates {
            p.validate(&table.schema)?;
        }
        let out_schema = Arc::new(table.schema.project(&projection)?);
        let cs = table.col_storage()?;

        let mut cols: Vec<usize> = Vec::new();
        for p in &predicates {
            if !cols.contains(&p.col) {
                cols.push(p.col);
            }
        }
        for &c in &projection {
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        let mut cursors = Vec::with_capacity(cols.len());
        for &col in &cols {
            let storage = &cs.columns[col];
            let file_id = ctx.next_file_id();
            cursors.push(ColCursor {
                col,
                dtype: table.schema.dtype(col),
                width: table.schema.dtype(col).width(),
                comp: storage.comp.clone(),
                preds: predicates
                    .iter()
                    .filter(|p| p.col == col)
                    .cloned()
                    .collect(),
                out_col: projection.iter().position(|&c| c == col),
                stream: FileStream::new(
                    ctx.disk.clone(),
                    file_id,
                    storage.file.clone(),
                    storage.page_size,
                )?,
                file_id,
                policy: ctx.sys.on_corrupt,
                vpp: storage.values_per_page.max(1) as u64,
                page: None,
                page_first_row: 0,
                page_count: 0,
                page_bad: false,
                decoded: Vec::new(),
                ints: Vec::new(),
                pass_map: Vec::new(),
                fast: ctx.sys.scan_fast_path,
                file_bytes: storage.byte_len() as f64,
                values_decoded: 0,
                blocks_decoded: 0,
                vec_pred_evals: 0,
                pred_evals: 0,
                pred_passes: 0,
                values_written: 0,
            });
        }
        // Fetch-all-then-iterate keeps multiple requests outstanding, like
        // the pipelined scanner.
        let interleave = if cursors.len() > 1 { 2 } else { 1 };
        ctx.disk.borrow_mut().set_interleave(interleave);
        Ok(SingleIteratorColumnScanner {
            ctx: ctx.clone(),
            out_schema,
            cursors,
            row_count: table.row_count,
            table,
            next_row: 0,
            done: false,
            dropped: DropSet::default(),
        })
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dropped = self.dropped.total();
        if dropped > 0 {
            self.ctx.disk.borrow_mut().note_dropped_rows(dropped);
        }
        let hw = self.ctx.hw;
        let mut meter = self.ctx.meter.borrow_mut();
        for c in &mut self.cursors {
            while c.stream.next_page().is_some() {}
            let decoded_all = (c.values_decoded + c.blocks_decoded) as f64;
            meter.decode(c.comp.codec.kind(), c.values_decoded as f64);
            meter.decode_block(c.comp.codec.kind(), c.blocks_decoded as f64);
            meter.col_iter(decoded_all);
            if !c.preds.is_empty() {
                meter.predicate(c.pred_evals as f64, c.pred_passes as f64);
                meter.vec_predicate(c.vec_pred_evals as f64);
            }
            meter.project(
                c.values_written as f64,
                1.0,
                c.values_written as f64 * c.width as f64,
            );
            // Everything is touched: dense sequential streaming of each file.
            meter.memory_access(&hw, c.file_bytes, decoded_all, c.width as f64);
        }
    }
}

impl Operator for SingleIteratorColumnScanner {
    fn schema(&self) -> &Arc<Schema> {
        &self.out_schema
    }

    fn label(&self) -> String {
        format!("scan[column-single] {}", self.table.name)
    }

    fn next(&mut self) -> Result<Option<TupleBlock>> {
        if self.done {
            return Ok(None);
        }
        let cap = self.ctx.sys.block_tuples;
        let mut block = TupleBlock::new(self.out_schema.clone(), cap);
        while block.count() < cap && self.next_row < self.row_count {
            let pos = self.next_row;
            self.next_row += 1;
            if self.dropped.contains(pos) {
                continue;
            }
            let mut pass = true;
            let mut row_dropped = false;
            // Predicate pass over the row (cursors hold decoded pages).
            for ci in 0..self.cursors.len() {
                if let Err(e) = self.cursors[ci].load_page_for(pos) {
                    if !degraded::should_skip(self.ctx.sys.on_corrupt, &e) {
                        return Err(e);
                    }
                    // Degraded skip: quarantine the bad page and drop the
                    // ordinals it holds by geometry. Later cursors are not
                    // advanced for this row; they catch up lazily.
                    let c = &self.cursors[ci];
                    let page_index = pos / c.vpp;
                    if self.table.quarantine.insert(QuarantinedPage::Col {
                        col: c.col,
                        page: page_index,
                    }) {
                        self.ctx.disk.borrow_mut().note_quarantined(1);
                    }
                    let start = page_index * c.vpp;
                    let end = ((page_index + 1) * c.vpp).min(self.row_count);
                    self.dropped.add(start, end);
                    row_dropped = true;
                    break;
                }
                let c = &mut self.cursors[ci];
                if pass {
                    if c.vectorized() {
                        // Verdict was computed in the page-load block pass.
                        let slot = (pos - c.page_first_row) as usize;
                        pass = c.pass_map[slot];
                    } else {
                        for p in &c.preds {
                            c.pred_evals += 1;
                            if p.eval_raw(c.dtype, c.raw_at(pos)) {
                                c.pred_passes += 1;
                            } else {
                                pass = false;
                                break;
                            }
                        }
                    }
                }
            }
            if row_dropped {
                continue;
            }
            if pass {
                let bi = block.push_blank(pos);
                for c in self.cursors.iter_mut() {
                    if let Some(oc) = c.out_col {
                        let raw = c.raw_at(pos).to_vec();
                        block.field_mut(bi, oc).copy_from_slice(&raw);
                        c.values_written += 1;
                    }
                }
            }
        }
        if block.is_empty() {
            self.finish();
            return Ok(None);
        }
        {
            let mut meter = self.ctx.meter.borrow_mut();
            meter.block_calls(1.0);
            meter.stream_bytes(block.byte_len() as f64);
        }
        Ok(Some(block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect_rows;
    use crate::scan_col::{ColumnScanMode, ColumnScanner};
    use rodb_compress::{Codec, ColumnCompression};
    use rodb_storage::{BuildLayouts, TableBuilder};
    use rodb_types::{Column, Value};

    fn table(n: usize) -> Arc<Table> {
        let s = Arc::new(
            Schema::new(vec![
                Column::int("id"),
                Column::int("val"),
                Column::text("tag", 6),
            ])
            .unwrap(),
        );
        let comps = vec![
            ColumnCompression::new(Codec::ForDelta { bits: 2 }, None).unwrap(),
            ColumnCompression::none(),
            ColumnCompression::none(),
        ];
        let mut b =
            TableBuilder::with_compression("t", s, 4096, BuildLayouts::column_only(), comps)
                .unwrap();
        for i in 0..n {
            b.push_row(&[
                Value::Int(i as i32),
                Value::Int((i % 100) as i32),
                Value::text(["aa", "bb", "cc"][i % 3]),
            ])
            .unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn matches_pipelined_scanner_results() {
        let t = table(3000);
        for preds in [
            vec![],
            vec![Predicate::lt(1, 10)],
            vec![Predicate::eq(2, "bb")],
        ] {
            let ctx = ExecContext::default_ctx();
            let mut single =
                SingleIteratorColumnScanner::new(t.clone(), vec![0, 1, 2], preds.clone(), &ctx)
                    .unwrap();
            let a = collect_rows(&mut single).unwrap();
            let ctx2 = ExecContext::default_ctx();
            let mut pipe = ColumnScanner::new(
                t.clone(),
                vec![0, 1, 2],
                preds.clone(),
                ColumnScanMode::Pipelined,
                &ctx2,
            )
            .unwrap();
            let b = collect_rows(&mut pipe).unwrap();
            assert_eq!(a, b, "{preds:?}");
        }
    }

    #[test]
    fn decodes_everything_even_at_low_selectivity() {
        let t = table(5000);
        // Pipelined at 0.1% selectivity decodes few driven values; the
        // single-iterator decodes all of them.
        let ctx_s = ExecContext::default_ctx();
        let mut single = SingleIteratorColumnScanner::new(
            t.clone(),
            vec![0, 1, 2],
            vec![Predicate::lt(1, 1)],
            &ctx_s,
        )
        .unwrap();
        while single.next().unwrap().is_some() {}
        let ctx_p = ExecContext::default_ctx();
        let mut pipe = ColumnScanner::new(
            t.clone(),
            vec![0, 1, 2],
            vec![Predicate::lt(1, 1)],
            ColumnScanMode::Pipelined,
            &ctx_p,
        )
        .unwrap();
        while pipe.next().unwrap().is_some() {}
        let u_single = ctx_s.meter.borrow().counters().uops;
        let u_pipe = ctx_p.meter.borrow().counters().uops;
        assert!(
            u_single > u_pipe,
            "single {u_single} should exceed pipelined {u_pipe} at 1% selectivity"
        );
    }

    #[test]
    fn no_position_overhead_at_full_selectivity() {
        let t = table(5000);
        let ctx_s = ExecContext::default_ctx();
        let mut single =
            SingleIteratorColumnScanner::new(t.clone(), vec![0, 1, 2], vec![], &ctx_s).unwrap();
        while single.next().unwrap().is_some() {}
        let ctx_p = ExecContext::default_ctx();
        let mut pipe = ColumnScanner::new(
            t.clone(),
            vec![0, 1, 2],
            vec![],
            ColumnScanMode::Pipelined,
            &ctx_p,
        )
        .unwrap();
        while pipe.next().unwrap().is_some() {}
        let u_single = ctx_s.meter.borrow().counters().uops;
        let u_pipe = ctx_p.meter.borrow().counters().uops;
        assert!(
            u_single < u_pipe,
            "single {u_single} should undercut pipelined {u_pipe} at 100% selectivity"
        );
    }

    #[test]
    fn fast_path_matches_and_cuts_decode_cpu() {
        let t = table(4000);
        for preds in [
            vec![],
            vec![Predicate::lt(1, 10)],
            vec![Predicate::lt(1, 60), Predicate::eq(2, "cc")],
        ] {
            let ctx = ExecContext::default_ctx();
            let mut slow =
                SingleIteratorColumnScanner::new(t.clone(), vec![0, 1, 2], preds.clone(), &ctx)
                    .unwrap();
            let slow_rows = collect_rows(&mut slow).unwrap();
            let fctx = ExecContext::new(
                rodb_types::HardwareConfig::default(),
                rodb_types::SystemConfig::default().with_scan_fast_path(true),
                1.0,
            )
            .unwrap();
            let mut fast =
                SingleIteratorColumnScanner::new(t.clone(), vec![0, 1, 2], preds.clone(), &fctx)
                    .unwrap();
            let fast_rows = collect_rows(&mut fast).unwrap();
            assert_eq!(fast_rows, slow_rows, "{preds:?}");
            let u_slow = ctx.meter.borrow().counters().uops;
            let u_fast = fctx.meter.borrow().counters().uops;
            assert!(
                u_fast < u_slow,
                "fast {u_fast} should undercut slow {u_slow} ({preds:?})"
            );
        }
    }

    #[test]
    fn io_equals_selected_columns() {
        let t = table(5000);
        let cs = t.col_storage().unwrap();
        let expect = (cs.columns[0].byte_len() + cs.columns[1].byte_len()) as f64;
        let ctx = ExecContext::default_ctx();
        let mut s = SingleIteratorColumnScanner::new(t.clone(), vec![0, 1], vec![], &ctx).unwrap();
        while s.next().unwrap().is_some() {}
        assert!((ctx.disk.borrow().stats().bytes_read - expect).abs() < 1.0);
    }
}
