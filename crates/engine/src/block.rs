//! Tuple blocks — the unit of data flow between operators.
//!
//! The engine is a pull-based *block*-iterator (§2.2.3): every `next()`
//! returns an array of tuples rather than a single tuple, amortizing call
//! overhead and keeping the working set inside L1 (the paper sizes blocks at
//! 100 tuples for a 16 KB L1). Tuples inside a block are raw row-major bytes
//! laid out by the block's output schema; both the row scanner and the
//! column scanner emit exactly this format, which is what makes them
//! interchangeable (Figure 4).

use std::sync::Arc;

use rodb_types::{tuple, Error, Result, Schema, Value};

/// A block of densely packed tuples plus their source row positions.
#[derive(Debug, Clone)]
pub struct TupleBlock {
    schema: Arc<Schema>,
    /// `count × schema.logical_width()` bytes, row-major.
    data: Vec<u8>,
    /// Global source-row ordinal of each tuple (drives pipelined column scan
    /// nodes; also useful to tests). Empty for operators that lose lineage
    /// (joins, aggregates).
    positions: Vec<u64>,
    count: usize,
}

impl TupleBlock {
    /// A fresh, empty block for the given output schema.
    pub fn new(schema: Arc<Schema>, capacity: usize) -> TupleBlock {
        let width = schema.logical_width();
        TupleBlock {
            schema,
            data: Vec::with_capacity(capacity * width),
            positions: Vec::with_capacity(capacity),
            count: 0,
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn count(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Tuple width in bytes.
    pub fn width(&self) -> usize {
        self.schema.logical_width()
    }

    /// Total payload bytes currently in the block.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Raw bytes of tuple `i`.
    #[inline]
    pub fn tuple(&self, i: usize) -> &[u8] {
        let w = self.width();
        &self.data[i * w..(i + 1) * w]
    }

    /// Source-row position of tuple `i` (if lineage was kept).
    pub fn position(&self, i: usize) -> Option<u64> {
        self.positions.get(i).copied()
    }

    pub fn positions(&self) -> &[u64] {
        &self.positions
    }

    /// Append a fully formed tuple.
    pub fn push_tuple(&mut self, raw: &[u8], position: u64) -> Result<()> {
        if raw.len() != self.width() {
            return Err(Error::corrupt(format!(
                "tuple of {} bytes into block of width {}",
                raw.len(),
                self.width()
            )));
        }
        self.data.extend_from_slice(raw);
        self.positions.push(position);
        self.count += 1;
        Ok(())
    }

    /// Append an uninitialized (zeroed) tuple and return its index; scanners
    /// fill fields in place via [`TupleBlock::field_mut`].
    pub fn push_blank(&mut self, position: u64) -> usize {
        let w = self.width();
        self.data.extend(std::iter::repeat_n(0u8, w));
        self.positions.push(position);
        self.count += 1;
        self.count - 1
    }

    /// Mutable bytes of column `col` of tuple `i`.
    #[inline]
    pub fn field_mut(&mut self, i: usize, col: usize) -> &mut [u8] {
        let w = self.width();
        let off = i * w + self.schema.offset(col);
        let fw = self.schema.dtype(col).width();
        &mut self.data[off..off + fw]
    }

    /// Borrow the bytes of column `col` of tuple `i`.
    #[inline]
    pub fn field(&self, i: usize, col: usize) -> &[u8] {
        tuple::field_slice(&self.schema, self.tuple(i), col)
    }

    /// Decode column `col` of tuple `i` to an owned [`Value`].
    pub fn value(&self, i: usize, col: usize) -> Result<Value> {
        tuple::decode_field(&self.schema, self.tuple(i), col)
    }

    /// Fast path: `Int` column of tuple `i`.
    #[inline]
    pub fn int(&self, i: usize, col: usize) -> i32 {
        tuple::read_int(&self.schema, self.tuple(i), col)
    }

    /// Keep only the tuples whose indices are in `keep` (ascending); returns
    /// bytes moved (for CPU accounting of the paper's "re-writing the
    /// resulting tuples" in predicate scan nodes).
    pub fn retain_indices(&mut self, keep: &[usize]) -> usize {
        let w = self.width();
        let mut moved = 0usize;
        for (dst, &src) in keep.iter().enumerate() {
            debug_assert!(src >= dst);
            if src != dst {
                let (head, tail) = self.data.split_at_mut(src * w);
                head[dst * w..dst * w + w].copy_from_slice(&tail[..w]);
                self.positions[dst] = self.positions[src];
            }
            moved += w;
        }
        self.count = keep.len();
        self.data.truncate(self.count * w);
        self.positions.truncate(self.count);
        moved
    }

    /// Clear contents, keeping the allocation (the paper's block reuse).
    pub fn clear(&mut self) {
        self.data.clear();
        self.positions.clear();
        self.count = 0;
    }

    /// Decode every tuple (test/debug helper).
    pub fn rows(&self) -> Result<Vec<Vec<Value>>> {
        (0..self.count)
            .map(|i| tuple::decode_tuple(&self.schema, self.tuple(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodb_types::Column;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Column::int("a"),
                Column::text("t", 5),
                Column::int("b"),
            ])
            .unwrap(),
        )
    }

    fn encode(a: i32, t: &str, b: i32, s: &Schema) -> Vec<u8> {
        let mut raw = Vec::new();
        tuple::encode_tuple(s, &[Value::Int(a), Value::text(t), Value::Int(b)], &mut raw).unwrap();
        raw
    }

    #[test]
    fn push_and_read() {
        let s = schema();
        let mut b = TupleBlock::new(s.clone(), 4);
        b.push_tuple(&encode(1, "x", -1, &s), 10).unwrap();
        b.push_tuple(&encode(2, "yy", -2, &s), 20).unwrap();
        assert_eq!(b.count(), 2);
        assert_eq!(b.int(0, 0), 1);
        assert_eq!(b.int(1, 2), -2);
        assert_eq!(b.value(1, 1).unwrap().to_string(), "yy");
        assert_eq!(b.position(0), Some(10));
        assert_eq!(b.positions(), &[10, 20]);
        assert_eq!(b.byte_len(), 2 * s.logical_width());
    }

    #[test]
    fn blank_fill_in_place() {
        let s = schema();
        let mut b = TupleBlock::new(s.clone(), 2);
        let i = b.push_blank(5);
        b.field_mut(i, 0).copy_from_slice(&42i32.to_le_bytes());
        b.field_mut(i, 1)[..3].copy_from_slice(b"abc");
        assert_eq!(b.int(i, 0), 42);
        assert_eq!(b.value(i, 1).unwrap().to_string(), "abc");
        assert_eq!(b.int(i, 2), 0);
    }

    #[test]
    fn retain_compacts() {
        let s = schema();
        let mut b = TupleBlock::new(s.clone(), 4);
        for i in 0..5 {
            b.push_tuple(&encode(i, "t", i * 10, &s), i as u64).unwrap();
        }
        let moved = b.retain_indices(&[0, 2, 4]);
        assert_eq!(b.count(), 3);
        assert_eq!(moved, 3 * s.logical_width());
        assert_eq!(b.int(0, 0), 0);
        assert_eq!(b.int(1, 0), 2);
        assert_eq!(b.int(2, 0), 4);
        assert_eq!(b.positions(), &[0, 2, 4]);
    }

    #[test]
    fn clear_reuses_allocation() {
        let s = schema();
        let mut b = TupleBlock::new(s.clone(), 4);
        b.push_tuple(&encode(1, "x", 2, &s), 0).unwrap();
        let cap = b.data.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.data.capacity(), cap);
    }

    #[test]
    fn wrong_width_rejected() {
        let s = schema();
        let mut b = TupleBlock::new(s, 1);
        assert!(b.push_tuple(&[0u8; 3], 0).is_err());
    }

    #[test]
    fn rows_roundtrip() {
        let s = schema();
        let mut b = TupleBlock::new(s.clone(), 2);
        b.push_tuple(&encode(7, "hi", 8, &s), 0).unwrap();
        let rows = b.rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(7));
        assert_eq!(rows[0][2], Value::Int(8));
    }
}
