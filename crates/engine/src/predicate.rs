//! SARGable predicates.
//!
//! The paper's scanners "apply SARGable predicates" (§2.2.3): simple
//! `attribute ⟨op⟩ literal` comparisons evaluable directly on stored bytes.
//! Text comparisons are bytewise on the zero-padded fixed-width value, which
//! matches lexicographic order for the generated data.

use rodb_types::{DataType, Error, Result, Schema, Value};

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Eq,
    Ne,
    Ge,
    Gt,
}

impl CmpOp {
    pub(crate) fn holds(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Ge => ord != Less,
            CmpOp::Gt => ord == Greater,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        };
        write!(f, "{s}")
    }
}

/// `column ⟨op⟩ literal` over a base-table column index.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    pub col: usize,
    pub op: CmpOp,
    pub literal: Value,
}

impl Predicate {
    pub fn new(col: usize, op: CmpOp, literal: Value) -> Predicate {
        Predicate { col, op, literal }
    }

    /// Shorthand builders.
    pub fn lt(col: usize, v: impl Into<Value>) -> Predicate {
        Predicate::new(col, CmpOp::Lt, v.into())
    }
    pub fn le(col: usize, v: impl Into<Value>) -> Predicate {
        Predicate::new(col, CmpOp::Le, v.into())
    }
    pub fn eq(col: usize, v: impl Into<Value>) -> Predicate {
        Predicate::new(col, CmpOp::Eq, v.into())
    }
    pub fn ge(col: usize, v: impl Into<Value>) -> Predicate {
        Predicate::new(col, CmpOp::Ge, v.into())
    }
    pub fn gt(col: usize, v: impl Into<Value>) -> Predicate {
        Predicate::new(col, CmpOp::Gt, v.into())
    }

    /// Validate against a schema (column exists, literal type compatible).
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if self.col >= schema.len() {
            return Err(Error::UnknownColumn(format!("index {}", self.col)));
        }
        let dt = schema.dtype(self.col);
        let ok = match (&self.literal, dt) {
            (Value::Int(_), DataType::Int) => true,
            (Value::Long(_), DataType::Long) => true,
            (Value::Int(_) | Value::Long(_), DataType::Long | DataType::Int) => true,
            (Value::Text(b), DataType::Text(n)) => b.len() <= n,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(Error::TypeMismatch {
                expected: dt.name(),
                got: self.literal.dtype().name(),
            })
        }
    }

    /// Evaluate against an `Int` value (fast path for int columns).
    #[inline]
    pub fn eval_int(&self, v: i32) -> bool {
        match &self.literal {
            Value::Int(l) => self.op.holds(v.cmp(l)),
            Value::Long(l) => self.op.holds((v as i64).cmp(l)),
            Value::Text(_) => false,
        }
    }

    /// Evaluate against the raw stored bytes of the column value.
    /// `raw` must be exactly the column's declared width.
    pub fn eval_raw(&self, dt: DataType, raw: &[u8]) -> bool {
        match dt {
            DataType::Int => {
                let v = i32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]);
                self.eval_int(v)
            }
            DataType::Long => {
                let v = i64::from_le_bytes([
                    raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7],
                ]);
                match &self.literal {
                    Value::Int(l) => self.op.holds(v.cmp(&(*l as i64))),
                    Value::Long(l) => self.op.holds(v.cmp(l)),
                    Value::Text(_) => false,
                }
            }
            DataType::Text(n) => match &self.literal {
                Value::Text(lit) => {
                    // Compare against the literal zero-padded to width n.
                    let mut ord = std::cmp::Ordering::Equal;
                    for (i, &rb) in raw.iter().enumerate().take(n) {
                        let lb = lit.get(i).copied().unwrap_or(0);
                        ord = rb.cmp(&lb);
                        if ord != std::cmp::Ordering::Equal {
                            break;
                        }
                    }
                    self.op.holds(ord)
                }
                _ => false,
            },
        }
    }

    /// Evaluate against an owned [`Value`] (slow path; tests & oracles).
    pub fn eval_value(&self, v: &Value) -> bool {
        match (v, &self.literal) {
            (Value::Int(a), _) => self.eval_int(*a),
            (Value::Long(a), Value::Int(l)) => self.op.holds(a.cmp(&(*l as i64))),
            (Value::Long(a), Value::Long(l)) => self.op.holds(a.cmp(l)),
            (Value::Text(a), Value::Text(_)) => self.eval_raw(DataType::Text(a.len()), a),
            _ => false,
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "col{} {} {}", self.col, self.op, self.literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodb_types::Column;

    #[test]
    fn int_comparisons() {
        let p = Predicate::lt(0, 10);
        assert!(p.eval_int(9));
        assert!(!p.eval_int(10));
        assert!(Predicate::le(0, 10).eval_int(10));
        assert!(Predicate::eq(0, -5).eval_int(-5));
        assert!(Predicate::ge(0, 3).eval_int(3));
        assert!(Predicate::gt(0, 3).eval_int(4));
        assert!(Predicate::new(0, CmpOp::Ne, Value::Int(3)).eval_int(4));
    }

    #[test]
    fn raw_int_matches_eval_int() {
        let p = Predicate::lt(0, 1000);
        for v in [-5i32, 0, 999, 1000, 2000] {
            assert_eq!(p.eval_raw(DataType::Int, &v.to_le_bytes()), p.eval_int(v));
        }
    }

    #[test]
    fn long_comparisons() {
        let p = Predicate::new(0, CmpOp::Gt, Value::Long(4_000_000_000));
        let raw = 5_000_000_000i64.to_le_bytes();
        assert!(p.eval_raw(DataType::Long, &raw));
        assert!(p.eval_value(&Value::Long(5_000_000_000)));
        assert!(!p.eval_value(&Value::Long(0)));
        // Int literal against a Long value widens.
        let p = Predicate::new(0, CmpOp::Ge, Value::Int(10));
        assert!(p.eval_value(&Value::Long(10)));
    }

    #[test]
    fn text_comparisons_on_padded_bytes() {
        let p = Predicate::eq(0, "AIR");
        let mut raw = b"AIR".to_vec();
        raw.extend([0u8; 7]);
        assert!(p.eval_raw(DataType::Text(10), &raw));
        let p2 = Predicate::lt(0, "SHIP");
        assert!(p2.eval_raw(DataType::Text(10), &raw)); // "AIR" < "SHIP"
        let p3 = Predicate::gt(0, "AA");
        assert!(p3.eval_raw(DataType::Text(10), &raw));
        // eval_value agrees.
        assert!(p.eval_value(&Value::text("AIR")));
        assert!(!p.eval_value(&Value::text("SHIP")));
    }

    #[test]
    fn validation() {
        let s = Schema::new(vec![Column::int("a"), Column::text("t", 3)]).unwrap();
        assert!(Predicate::lt(0, 5).validate(&s).is_ok());
        assert!(Predicate::eq(1, "ab").validate(&s).is_ok());
        assert!(Predicate::eq(1, "toolong").validate(&s).is_err());
        assert!(Predicate::lt(1, 5).validate(&s).is_err());
        assert!(Predicate::eq(0, "x").validate(&s).is_err());
        assert!(Predicate::lt(7, 5).validate(&s).is_err());
    }

    #[test]
    fn type_confusion_is_false_not_panic() {
        let p = Predicate::eq(0, "x");
        assert!(!p.eval_int(5));
        assert!(!p.eval_value(&Value::Int(5)));
        let p = Predicate::lt(0, 5);
        assert!(!p.eval_value(&Value::text("x")));
    }
}
