//! The operator interface and shared execution context.
//!
//! Every relational operator is a pull-based block iterator (§2.2.3): a call
//! to [`Operator::next`] returns the next [`TupleBlock`] or `None` at end of
//! stream. Operators are agnostic about the database schema and "operate on
//! generic tuple structures".

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use rodb_cpu::CpuMeter;
use rodb_io::{DiskArray, SharedDisk};
use rodb_trace::Tracer;
use rodb_types::{HardwareConfig, Result, Schema, SystemConfig};

use crate::block::TupleBlock;

/// Shared per-query state: the simulated disk, the CPU meter, and the
/// platform/system configuration.
#[derive(Clone)]
pub struct ExecContext {
    pub disk: SharedDisk,
    pub meter: Rc<RefCell<CpuMeter>>,
    pub hw: HardwareConfig,
    pub sys: SystemConfig,
    /// virtual rows ÷ actual rows; CPU counters are multiplied by this at
    /// report time (the disk simulator applies it internally).
    pub row_scale: f64,
    /// Span recorder; `None` (the default) keeps execution trace-free with
    /// zero per-block overhead (operators are not even wrapped).
    pub tracer: Option<Tracer>,
    file_counter: Rc<RefCell<u64>>,
    /// Disk traffic already charged as kernel CPU work: (bytes, seeks).
    /// Settlement is idempotent across multiple executions on one context.
    settled_io: Rc<RefCell<(f64, u64)>>,
}

impl ExecContext {
    /// Build a context for one query execution.
    pub fn new(hw: HardwareConfig, sys: SystemConfig, row_scale: f64) -> Result<ExecContext> {
        let disk = DiskArray::new(&hw, &sys, row_scale.max(1.0))?;
        Ok(ExecContext {
            disk: Rc::new(RefCell::new(disk)),
            meter: Rc::new(RefCell::new(CpuMeter::default())),
            hw,
            sys,
            row_scale: row_scale.max(1.0),
            tracer: None,
            file_counter: Rc::new(RefCell::new(0)),
            settled_io: Rc::new(RefCell::new((0.0, 0))),
        })
    }

    /// Turn on span tracing for every operator built on this context:
    /// installs a [`Tracer`], routes disk-simulator events (bursts, zone
    /// skips, replica retries…) into its sink, and enables the CPU meter's
    /// per-phase attribution.
    pub fn with_tracing(mut self) -> ExecContext {
        let tracer = Tracer::new();
        self.disk.borrow_mut().set_trace_sink(tracer.sink());
        self.meter.borrow_mut().enable_profiling();
        self.tracer = Some(tracer);
        self
    }

    /// Default platform, no scaling.
    pub fn default_ctx() -> ExecContext {
        ExecContext::new(HardwareConfig::default(), SystemConfig::default(), 1.0)
            .expect("default config is valid")
    }

    /// Allocate a unique simulated-file id.
    pub fn next_file_id(&self) -> rodb_io::FileId {
        let mut c = self.file_counter.borrow_mut();
        *c += 1;
        rodb_io::FileId(*c)
    }

    /// Charge kernel CPU for disk traffic not yet settled on this context.
    /// Idempotent: only the delta since the last settlement is charged, so
    /// running several executions (or a shared scan plus an operator tree)
    /// on one context never double-counts.
    pub fn settle_io_kernel_work(&self) {
        let (bytes, seeks) = {
            let disk = self.disk.borrow();
            (disk.stats().bytes_read, disk.stats().seeks)
        };
        let mut settled = self.settled_io.borrow_mut();
        let (new_bytes, new_seeks) = (bytes - settled.0, seeks - settled.1);
        *settled = (bytes, seeks);
        if new_bytes > 0.0 || new_seeks > 0 {
            self.meter.borrow_mut().io_kernel_work(
                new_bytes / self.row_scale,
                self.sys.io_unit,
                new_seeks as f64 / self.row_scale,
            );
        }
    }

    /// Register a competing scan (Fig. 11) matched to our prefetch depth.
    pub fn add_competing_scan(&self) {
        self.disk
            .borrow_mut()
            .add_competitor(self.sys.prefetch_depth, self.sys.io_unit);
    }
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("row_scale", &self.row_scale)
            .finish_non_exhaustive()
    }
}

/// A pull-based block iterator.
pub trait Operator {
    /// Output schema of the blocks this operator produces.
    fn schema(&self) -> &Arc<Schema>;

    /// Produce the next block, or `None` at end of stream. Returned blocks
    /// are non-empty.
    fn next(&mut self) -> Result<Option<TupleBlock>>;

    /// Display label for EXPLAIN/trace output (e.g. `scan[column]`).
    fn label(&self) -> String {
        "op".to_string()
    }
}

impl<T: Operator + ?Sized> Operator for Box<T> {
    fn schema(&self) -> &Arc<Schema> {
        (**self).schema()
    }
    fn next(&mut self) -> Result<Option<TupleBlock>> {
        (**self).next()
    }
    fn label(&self) -> String {
        (**self).label()
    }
}

/// Helper: drain an operator, returning row count and block count
/// (used by tests and the executor).
pub fn drain(op: &mut dyn Operator) -> Result<(u64, u64)> {
    let mut rows = 0u64;
    let mut blocks = 0u64;
    while let Some(b) = op.next()? {
        rows += b.count() as u64;
        blocks += 1;
    }
    Ok((rows, blocks))
}

/// Helper: collect all rows as values (tests and small results).
pub fn collect_rows(op: &mut dyn Operator) -> Result<Vec<Vec<rodb_types::Value>>> {
    let mut out = Vec::new();
    while let Some(b) = op.next()? {
        out.extend(b.rows()?);
    }
    Ok(out)
}
