//! Figure 1, end to end: the full life of a read-optimized database.
//!
//! The paper's Figure 1 shows writes landing in a *write-optimized store*,
//! a periodic *merge* into the read-optimized store, and a *compression
//! advisor* + *MV advisor* shaping the physical design. This example walks
//! the whole pipeline:
//!
//!   bulk load → queries → WOS inserts → merge → advisor-driven redesign →
//!   queries again, cheaper.
//!
//! ```sh
//! cargo run --release --example figure1_pipeline
//! ```

use rodb::prelude::*;
use rodb_core::{materialize, recommend_vertical_partitions, QueryPattern};
use std::sync::Arc;

fn main() -> Result<()> {
    let mut db = Database::new();

    // ---- 1. Bulk load the read-optimized store ---------------------------
    let schema = Arc::new(Schema::new(vec![
        Column::int("day"),  // sorted — a natural FOR-delta key
        Column::int("shop"), // low cardinality
        Column::int("sku"),
        Column::int("units"),
        Column::int("cents"),
        Column::text("channel", 10), // {web, store, phone}
    ])?);
    let channels = ["web", "store", "phone"];
    let mut loader = TableBuilder::new("sales", schema.clone(), 4096, BuildLayouts::both())?;
    for i in 0..120_000i32 {
        loader.push_row(&[
            Value::Int(i / 100), // 100 sales/day
            Value::Int(i % 40),
            Value::Int((i * 17) % 9_000),
            Value::Int(1 + i % 7),
            Value::Int(99 + (i % 900) * 10),
            Value::text(channels[(i % 3) as usize]),
        ])?;
    }
    db.register(loader.finish()?);
    println!("loaded 120k rows into 'sales' (row + column layouts)");

    // ---- 2. Run the read workload ----------------------------------------
    let daily = |db: &Database| -> Result<QueryResult> {
        db.query("sales")?
            .layout(ScanLayout::Column)
            .select(&["day", "units", "cents"])?
            .filter("day", CmpOp::Ge, 1_000)?
            .group_by("day")?
            .aggregate(AggSpec::count())
            .aggregate(AggSpec::sum(2))
            .scale_to_rows(60_000_000)
            .run_collect()
    };
    let before = daily(&db)?;
    println!(
        "daily-revenue query: {} groups in {:.2} simulated s",
        before.rows.len(),
        before.report.elapsed_s
    );

    // ---- 3. New facts arrive: stage in the WOS, then merge ---------------
    let mut wos = db.wos_for("sales")?;
    for i in 0..500i32 {
        wos.insert(vec![
            Value::Int(1_200 + i / 100), // new days
            Value::Int(i % 40),
            Value::Int((i * 13) % 9_000),
            Value::Int(1 + i % 7),
            Value::Int(99 + (i % 900) * 10),
            Value::text(channels[(i % 3) as usize]),
        ])?;
    }
    println!(
        "\nstaged {} inserts in the write-optimized store",
        wos.len()
    );
    let comps = vec![ColumnCompression::none(); schema.len()];
    let merged = db.merge_wos("sales", &mut wos, &comps, Some(0))?;
    println!(
        "merged → read store now {} rows (sorted by day)",
        merged.row_count
    );
    let after_merge = daily(&db)?;
    println!(
        "daily-revenue sees the new days: {} groups (was {})",
        after_merge.rows.len(),
        before.rows.len()
    );

    // ---- 4. Compression advisor redesigns the physical layout ------------
    let table = db.table("sales")?;
    let sample = table.read_all(Layout::Row)?;
    let comps = recommend_compression(&table, &sample[..20_000], AdvisorGoal::DiskConstrained)?;
    println!("\ncompression advisor picked:");
    for (col, comp) in schema.columns().iter().zip(&comps) {
        println!(
            "  {:<8} → {:?} ({} bits/value)",
            col.name,
            comp.codec.kind(),
            comp.bits_per_value(col.dtype)
        );
    }
    let mut rebuilt =
        TableBuilder::with_compression("sales", schema.clone(), 4096, BuildLayouts::both(), comps)?;
    for row in table.read_all(Layout::Row)? {
        rebuilt.push_row(&row)?;
    }
    let old_bytes = table.col_storage()?.byte_len();
    db.register(rebuilt.finish()?);
    let new_bytes = db.table("sales")?.col_storage()?.byte_len();
    println!(
        "column files {} KB → {} KB ({:.1}x smaller)",
        old_bytes / 1024,
        new_bytes / 1024,
        old_bytes as f64 / new_bytes as f64
    );
    let after_z = daily(&db)?;
    println!(
        "daily-revenue query now {:.2} simulated s (was {:.2})",
        after_z.report.elapsed_s, before.report.elapsed_s
    );

    // ---- 5. MV advisor proposes vertical partitions for the row store ----
    let workload = vec![
        QueryPattern::new(vec![0, 3, 4], 0.15, 10.0), // daily revenue
        QueryPattern::new(vec![1, 4], 0.05, 3.0),     // per-shop probe
        QueryPattern::new(vec![0, 5], 0.30, 1.0),     // channel mix
    ];
    let base = db.table("sales")?;
    let recs = recommend_vertical_partitions(&base, &workload, db.cpdb(), 2)?;
    println!("\nMV advisor (row-store physical design):");
    for r in &recs {
        let names: Vec<&str> = r
            .columns
            .iter()
            .map(|&c| schema.columns()[c].name.as_str())
            .collect();
        println!(
            "  partition({}) — serves {} queries, benefit {:.3}",
            names.join(", "),
            r.serves.len(),
            r.benefit
        );
    }
    if let Some(best) = recs.first() {
        let mv = materialize(&base, best, "sales_mv1")?;
        println!(
            "materialized 'sales_mv1': {} rows × {} B tuples (base: {} B)",
            mv.row_count,
            mv.schema.logical_width(),
            schema.logical_width()
        );
        db.register(mv);
    }
    println!("\npipeline complete: load → query → WOS → merge → advisors → redesign.");
    Ok(())
}
