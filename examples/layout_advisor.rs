//! Physical-design advisor session: the Figure-1 "advisors" in action.
//!
//! Given a table and a query mix, pick (a) a storage layout per query using
//! the Section-5 analytical model, validating the prediction with measured
//! runs, and (b) a compression scheme per column with the sampling advisor —
//! then show what the chosen compression buys.
//!
//! ```sh
//! cargo run --release --example layout_advisor
//! ```

use rodb::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    let mut db = Database::new();

    // An event-log style table: sorted timestamp, low-cardinality columns,
    // one padded text field — lots of compression opportunity.
    let schema = Arc::new(Schema::new(vec![
        Column::int("ts"),
        Column::int("user_id"),
        Column::int("event_type"),
        Column::int("latency_us"),
        Column::text("region", 16),
        Column::text("detail", 48),
    ])?);
    let mut loader = TableBuilder::new("events", schema.clone(), 4096, BuildLayouts::both())?;
    let regions = ["us-east", "us-west", "eu-central", "ap-south"];
    for i in 0..150_000i32 {
        loader.push_row(&[
            Value::Int(1_000_000 + i), // sorted → FOR-delta candidate
            Value::Int((i * 7919) % 40_000),
            Value::Int(i % 12),
            Value::Int(100 + (i * 31) % 5_000),
            Value::text(regions[(i % 4) as usize]),
            Value::text("evt detail"), // content ≪ declared width
        ])?;
    }
    db.register(loader.finish()?);
    let table = db.table("events")?;

    // ---- Layout advisor --------------------------------------------------
    println!("platform: {:.0} cpdb\n", db.cpdb());
    println!("query mix → model-predicted speedup and recommendation:");
    let queries: &[(&str, Vec<usize>, f64)] = &[
        ("dashboard tile (2 of 6 cols, 5% sel)", vec![0, 3], 0.05),
        ("full export (all cols, 100% sel)", (0..6).collect(), 1.0),
        ("alert probe (1 col, 0.1% sel)", vec![3], 0.001),
    ];
    for (name, proj, sel) in queries {
        let s = predicted_speedup(&table, proj, *sel, db.cpdb())?;
        let rec = recommend_layout(&table, proj, *sel, db.cpdb())?;
        println!("  {name:<40} {s:>5.2}x → {rec}");
    }

    // Validate the first prediction with a measured comparison.
    let q = db
        .query("events")?
        .select(&["ts", "latency_us"])?
        .filter("event_type", CmpOp::Lt, 1)? // ~8% selectivity
        .scale_to_rows(60_000_000);
    let cmp = compare_layouts(&q)?;
    println!(
        "\nmeasured check (dashboard tile): row {:.2}s vs column {:.2}s → {:.2}x",
        cmp.row.elapsed_s,
        cmp.column.elapsed_s,
        cmp.speedup()
    );

    // ---- Compression advisor ----------------------------------------------
    println!("\ncompression advisor (disk-constrained goal):");
    let sample = table.read_all(Layout::Row)?;
    let sample = &sample[..10_000.min(sample.len())];
    let comps = recommend_compression(&table, sample, AdvisorGoal::DiskConstrained)?;
    for (col, comp) in schema.columns().iter().zip(&comps) {
        println!(
            "  {:<12} {:<9} → {:?}, {} bits/value (was {})",
            col.name,
            col.dtype.to_string(),
            comp.codec.kind(),
            comp.bits_per_value(col.dtype),
            col.dtype.width() * 8,
        );
    }

    // Rebuild the table with the recommended codecs and measure the win.
    let mut loader = TableBuilder::with_compression(
        "events_z",
        schema.clone(),
        4096,
        BuildLayouts::both(),
        comps,
    )?;
    for row in table.read_all(Layout::Row)? {
        loader.push_row(&row)?;
    }
    db.register(loader.finish()?);
    let plain_bytes = table.col_storage()?.byte_len();
    let z = db.table("events_z")?;
    let z_bytes = z.col_storage()?.byte_len();
    println!(
        "\ncolumn files: {} KB → {} KB ({:.1}x smaller)",
        plain_bytes / 1024,
        z_bytes / 1024,
        plain_bytes as f64 / z_bytes as f64
    );

    let run = |name: &str| -> Result<f64> {
        Ok(db
            .query(name)?
            .layout(ScanLayout::Column)
            .select(&["ts", "user_id", "latency_us"])?
            .filter("event_type", CmpOp::Lt, 1)?
            .scale_to_rows(60_000_000)
            .run()?
            .report
            .elapsed_s)
    };
    println!(
        "3-column scan: plain {:.2}s → compressed {:.2}s (simulated, paper scale)",
        run("events")?,
        run("events_z")?
    );
    Ok(())
}
