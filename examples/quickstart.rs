//! Quickstart: load a table in both layouts, query it both ways, and see the
//! row/column tradeoff the paper is about.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rodb::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    // 1. A database on the paper's reference platform: Pentium 4 @ 3.2 GHz
    //    over a 3-disk RAID (180 MB/s) — an 18 cycles-per-disk-byte box.
    let mut db = Database::new();
    println!("platform: {:.0} cpdb", db.cpdb());

    // 2. Define a schema and bulk-load a table with BOTH physical layouts
    //    (read-optimized stores are loaded in bulk; no slotted pages).
    let schema = Arc::new(Schema::new(vec![
        Column::int("product_id"),
        Column::int("store_id"),
        Column::int("quantity"),
        Column::int("price_cents"),
        Column::text("promo_code", 12),
    ])?);
    let mut loader = TableBuilder::new("sales", schema, 4096, BuildLayouts::both())?;
    for i in 0..200_000i32 {
        loader.push_row(&[
            Value::Int(i % 5_000),
            Value::Int(i % 37),
            Value::Int(1 + i % 9),
            Value::Int(199 + (i % 400) * 25),
            Value::text(["", "SUMMER", "VIP"][(i % 3) as usize]),
        ])?;
    }
    db.register(loader.finish()?);

    // 3. Query it: SELECT product_id, quantity FROM sales
    //              WHERE store_id < 4  (≈11% selectivity)
    //    The builder mirrors the paper's precompiled plans.
    let query = db
        .query("sales")?
        .select(&["product_id", "quantity"])?
        .filter("store_id", CmpOp::Lt, 4)?
        .scale_to_rows(60_000_000); // report times at the paper's table size

    // 4. Run it through the ROW store and the COLUMN store.
    let cmp = compare_layouts(&query)?;
    println!(
        "\nrow store:    {:>8.2} simulated s  (io {:>6.2}s, cpu {:>6.2}s)",
        cmp.row.elapsed_s,
        cmp.row.io_s(),
        cmp.row.cpu.total()
    );
    println!(
        "column store: {:>8.2} simulated s  (io {:>6.2}s, cpu {:>6.2}s)",
        cmp.column.elapsed_s,
        cmp.column.io_s(),
        cmp.column.cpu.total()
    );
    println!("column-over-row speedup: {:.2}x", cmp.speedup());

    // 5. The paper's CPU-time breakdown (Figure 6 right).
    let b = &cmp.column.cpu;
    println!(
        "\ncolumn CPU breakdown: sys {:.2}s | usr-uop {:.2}s | usr-L2 {:.2}s | \
         usr-L1 {:.2}s | usr-rest {:.2}s",
        b.sys, b.usr_uop, b.usr_l2, b.usr_l1, b.usr_rest
    );

    // 6. Aggregate through the same scanners (results are exact).
    let result = db
        .query("sales")?
        .layout(ScanLayout::Column)
        .select(&["store_id", "price_cents"])?
        .group_by("store_id")?
        .aggregate(AggSpec::count())
        .aggregate(AggSpec::sum(1))
        .run_collect()?;
    println!(
        "\nrevenue by store (first 3 of {} groups):",
        result.rows.len()
    );
    for r in result.rows.iter().take(3) {
        println!("  store {:>2}: {:>6} sales, {:>12} cents", r[0], r[1], r[2]);
    }

    // 7. Ask the Section-5 analytical model which layout to use *without*
    //    running anything.
    let t = db.table("sales")?;
    let layout = recommend_layout(&t, &[0, 2], 0.11, db.cpdb())?;
    println!("\nmodel-recommended layout for this query: {layout}");
    Ok(())
}
