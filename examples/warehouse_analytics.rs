//! Warehouse analytics: the paper's motivating workload end to end.
//!
//! Loads the TPC-H-derived LINEITEM and ORDERS tables (§3.1), then runs
//! three warehouse-style queries through the engine: a scan-heavy aggregate
//! over the fact table, a selective drill-down, and an ORDERS ⋈ LINEITEM
//! merge join feeding an aggregation — each on both layouts.
//!
//! ```sh
//! cargo run --release --example warehouse_analytics
//! ```

use rodb::prelude::*;

const ROWS: u64 = 100_000;
const VIRTUAL_ROWS: u64 = 60_000_000;

fn main() -> Result<()> {
    let mut db = Database::new();
    println!("loading LINEITEM + ORDERS ({ROWS} rows each, seed 1)...");
    db.register(load_lineitem(
        ROWS,
        1,
        4096,
        BuildLayouts::both(),
        Variant::Plain,
    )?);
    db.register(load_orders(
        ROWS,
        1,
        4096,
        BuildLayouts::both(),
        Variant::Plain,
    )?);

    // --- Q1: pricing summary over the fact table -------------------------
    // SELECT l_returnflag, count(*), sum(l_quantity), avg(l_extendedprice)
    // FROM lineitem WHERE l_shipdate < τ(90%)
    println!("\nQ1: pricing summary (scan + grouped aggregation)");
    for layout in [ScanLayout::Row, ScanLayout::Column] {
        let q = db
            .query("lineitem")?
            .layout(layout)
            .select(&[
                "l_returnflag",
                "l_quantity",
                "l_extendedprice",
                "l_shipdate",
            ])?
            .filter("l_shipdate", CmpOp::Lt, 2_070)?
            .group_by("l_returnflag")?
            .aggregate(AggSpec::count())
            .aggregate(AggSpec::sum(1))
            .aggregate(AggSpec::avg(2))
            .scale_to_rows(VIRTUAL_ROWS);
        let res = q.run_collect()?;
        println!(
            "  {layout:>6}: {:>7.2} simulated s, {} groups",
            res.report.elapsed_s,
            res.rows.len()
        );
        if layout == ScanLayout::Column {
            for r in &res.rows {
                println!(
                    "    flag {}: {:>8} lines, qty {:>9}, avg price {:>8}",
                    r[0], r[1], r[2], r[3]
                );
            }
        }
    }

    // --- Q2: selective drill-down (the column store's best case) ---------
    // SELECT l_orderkey, l_extendedprice FROM lineitem
    // WHERE l_partkey < τ(0.1%)
    println!("\nQ2: needle-in-haystack drill-down (0.1% selectivity)");
    let pk = partkey_threshold(0.001);
    for layout in [ScanLayout::Row, ScanLayout::Column] {
        let res = db
            .query("lineitem")?
            .layout(layout)
            .select(&["l_orderkey", "l_extendedprice"])?
            .filter("l_partkey", CmpOp::Lt, pk)?
            .scale_to_rows(VIRTUAL_ROWS)
            .run()?;
        println!(
            "  {layout:>6}: {:>7.2} simulated s for {} matches",
            res.report.elapsed_s, res.report.rows
        );
    }

    // --- Q3: ORDERS ⋈ LINEITEM merge join + aggregate --------------------
    // SELECT o_orderpriority, count(*) FROM orders JOIN lineitem
    // ON o_orderkey = l_orderkey WHERE o_orderdate < τ(20%)
    // (both tables are bulk-loaded in order-key order → merge join applies)
    println!("\nQ3: ORDERS ⋈ LINEITEM merge join");
    let od = orderdate_threshold(0.20);
    for layout in [ScanLayout::Row, ScanLayout::Column] {
        let ctx = ExecContext::new(
            HardwareConfig::default(),
            SystemConfig::default(),
            VIRTUAL_ROWS as f64 / ROWS as f64,
        )?;
        let orders_scan = ScanSpec::new(
            db.table("orders")?,
            layout,
            vec![1, 4], // o_orderkey, o_orderpriority
        )
        .with_predicates(vec![Predicate::lt(0, od)])
        .build(&ctx)?;
        let lineitem_scan = ScanSpec::new(
            db.table("lineitem")?,
            layout,
            vec![1, 4], // l_orderkey, l_quantity
        )
        .build(&ctx)?;
        let join = MergeJoin::new(orders_scan, 0, lineitem_scan, 0, &ctx)?;
        let agg = Aggregate::new(
            Box::new(join),
            Some(1), // group by o_orderpriority
            vec![AggSpec::count(), AggSpec::sum(3)],
            AggStrategy::Hash,
            &ctx,
        )?;
        let mut root: Box<dyn Operator> = Box::new(agg);
        let mut groups = Vec::new();
        while let Some(b) = root.next()? {
            groups.extend(b.rows()?);
        }
        let report = rodb_engine::run_to_completion(root.as_mut(), &ctx)?;
        println!(
            "  {layout:>6}: {:>7.2} simulated s, {} priority groups",
            report.elapsed_s.max(report.io_s()),
            groups.len()
        );
        if layout == ScanLayout::Column {
            for g in &groups {
                println!("    {:<12} {:>8} lineitems, qty {:>9}", g[0], g[1], g[2]);
            }
        }
    }
    println!("\ndone.");
    Ok(())
}
