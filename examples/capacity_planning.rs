//! Capacity planning with the cpdb model (§5).
//!
//! The paper collapses "how many disks, how many CPUs, how much competing
//! traffic" into one number — cycles per disk byte — and reads layout
//! decisions off it. This example walks a set of candidate machine
//! configurations for a fixed workload, prints each one's cpdb rating and
//! predicted row/column outcome, and shows the paper's trend claim: cpdb has
//! grown ~3× per decade, so column stores keep getting more attractive.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use rodb::prelude::*;

fn main() -> Result<()> {
    // The workload: scan a 24-byte-wide fact table, 10% selectivity,
    // reading 2 of its 6 four-byte attributes (the Figure 2 setting, one
    // column of the grid).
    let cfg = Figure2Config {
        widths: vec![24.0],
        cpdbs: vec![],
        ..Default::default()
    };

    println!("workload: 24 B tuples, project 2/6 attrs (8 B), 10% selectivity\n");
    println!(
        "{:<34} {:>6} {:>9} {:>10}",
        "configuration", "cpdb", "speedup", "choose"
    );

    let configs: &[(&str, HardwareConfig)] = &[
        (
            "1995 workstation (1 disk)",
            HardwareConfig {
                clock_hz: 0.2e9,
                disks: 1,
                disk_bw: 20.0e6,
                ..HardwareConfig::default()
            },
        ),
        (
            "2005 desktop, 1 CPU / 1 disk",
            HardwareConfig {
                disks: 1,
                ..HardwareConfig::default()
            },
        ),
        ("paper testbed: 1 CPU / 3 disks", HardwareConfig::default()),
        (
            "dual CPU / 1 disk (≈108 cpdb)",
            HardwareConfig {
                clock_hz: 6.4e9,
                disks: 1,
                ..HardwareConfig::default()
            },
        ),
        (
            "8-core server / 4 disks",
            HardwareConfig {
                clock_hz: 25.6e9,
                disks: 4,
                ..HardwareConfig::default()
            },
        ),
        (
            "CPU-starved: 1 slow CPU / wide RAID",
            HardwareConfig {
                clock_hz: 1.6e9,
                disks: 3,
                ..HardwareConfig::default()
            },
        ),
    ];

    for (name, hw) in configs {
        let cpdb = hw.cpdb();
        let s = speedup_at(&cfg, 24.0, cpdb);
        println!(
            "{:<34} {:>6.0} {:>8.2}x {:>10}",
            name,
            cpdb,
            s,
            if s >= 1.0 { "column" } else { "row" }
        );
    }

    // Competing traffic raises the *effective* cpdb of a query (§5): CPU
    // competition lowers it, disk competition raises it.
    println!("\neffective cpdb under contention (paper testbed):");
    let base = HardwareConfig::default();
    for (what, factor) in [
        ("alone", 1.0),
        ("disk shared with 1 competing scan", 2.0),
        ("disk shared with 3 competing scans", 4.0),
        ("CPU shared with another query", 0.5),
    ] {
        // Disk competition halves per-query bandwidth → cpdb doubles;
        // CPU competition halves per-query cycles → cpdb halves.
        let eff = base.cpdb() * factor;
        let s = speedup_at(&cfg, 24.0, eff);
        println!("  {what:<38} cpdb {eff:>5.0} → speedup {s:.2}x");
    }

    // The trend claim (§5): cpdb grew from ~10 (1995) to ~30 (2005) per
    // disk; multicore accelerates it.
    println!("\ncpdb trend → the column store's future (width 24 B, 50% proj):");
    for (year, cpdb) in [(1995, 10.0), (2005, 30.0), (2010, 90.0), (2015, 270.0)] {
        let s = speedup_at(&cfg, 24.0, cpdb);
        println!("  {year}: cpdb ≈ {cpdb:>5.0} → column speedup {s:.2}x");
    }
    println!(
        "\npaper: \"current architectural trends suggest column stores ... will \
         become an even more attractive architecture with time.\""
    );

    // §2.1.1's other planning rule: when is an unclustered index worth it?
    use rodb_model::IndexScanConfig;
    println!("\nindex-scan vs sequential-scan break-even (§2.1.1):");
    let paper = IndexScanConfig::paper_example();
    println!(
        "  paper example (5 ms seek, 300 MB/s, 128 B tuples): {:.4}% \
         (paper: \"less than 0.008%\")",
        paper.breakeven_selectivity() * 100.0
    );
    for (name, cfg) in [
        (
            "our testbed, 152 B LINEITEM rows",
            IndexScanConfig {
                seek_s: 5.0e-3,
                disk_bw: 180.0e6,
                tuple_bytes: 152.0,
            },
        ),
        (
            "single slow disk, narrow ORDERS rows",
            IndexScanConfig {
                seek_s: 8.0e-3,
                disk_bw: 60.0e6,
                tuple_bytes: 32.0,
            },
        ),
    ] {
        println!(
            "  {name}: index pays off below {:.4}% selectivity",
            cfg.breakeven_selectivity() * 100.0
        );
    }
    Ok(())
}
