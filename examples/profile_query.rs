//! Profiling a query: operator span trees, EXPLAIN ANALYZE, trace files,
//! and the process-wide metrics registry.
//!
//! ```sh
//! cargo run --release --example profile_query
//! ```
//!
//! Tracing is off by default and costs nothing until you opt in with
//! `.trace(true)`; a traced run reports exactly the same numbers as an
//! untraced one (the engine asserts this in its test suite) plus a span
//! tree you can print or save.

use rodb::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    // 1. A table with both physical layouts, as in quickstart.
    let mut db = Database::new();
    let schema = Arc::new(Schema::new(vec![
        Column::int("product_id"),
        Column::int("store_id"),
        Column::int("quantity"),
        Column::int("price_cents"),
    ])?);
    let mut loader = TableBuilder::new("sales", schema, 4096, BuildLayouts::both())?;
    for i in 0..200_000i32 {
        loader.push_row(&[
            Value::Int(i % 5_000),
            Value::Int(i % 37),
            Value::Int(1 + i % 9),
            Value::Int(199 + (i % 400) * 25),
        ])?;
    }
    db.register(loader.finish()?);

    // 2. The same grouped aggregation as quickstart, but traced: one span
    //    per plan operator, accumulating simulated I/O, modeled CPU (with
    //    the per-phase split), and real wall time across every next() call.
    let result = db
        .query("sales")?
        .layout(ScanLayout::Column)
        .select(&["store_id", "price_cents"])?
        .filter("store_id", CmpOp::Lt, 30)?
        .group_by("store_id")?
        .aggregate(AggSpec::sum(1))
        .threads(4)
        .trace(true)
        .run()?;

    // 3. EXPLAIN ANALYZE: the span tree, annotated with rows, blocks,
    //    modeled CPU/I-O seconds, and synthesized per-phase child spans
    //    (predicate, decode, aggregation...). The root line equals the
    //    RunReport totals exactly.
    println!("{}", result.explain().expect("tracing was on"));

    // 4. The same tree as machine-readable artifacts: a span JSON for
    //    bench_diff and a Chrome trace-event file you can open at
    //    chrome://tracing or ui.perfetto.dev.
    let trace = result.trace.as_ref().expect("tracing was on");
    let path = trace
        .save("results/traces", "profile_query")
        .expect("write trace");
    println!("saved {} (+ .chrome.json sibling)", path.display());

    // 5. Every run — traced or not — also bumps the process-wide metrics
    //    registry; drain it for a counters/histograms JSON summary, as the
    //    fuzzer's --json artifact does.
    println!("\nmetrics registry:\n{}", MetricsRegistry::drain().pretty());
    Ok(())
}
