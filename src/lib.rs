//! # rodb — a read-optimized row/column database engine
//!
//! A from-scratch Rust reproduction of *"Performance Tradeoffs in
//! Read-Optimized Databases"* (Harizopoulos, Liang, Abadi, Madden —
//! VLDB 2006): a dense-paged storage manager with row **and** column
//! layouts, the paper's three lightweight compression schemes, a pull-based
//! block-iterator query engine whose row and pipelined-column scanners are
//! interchangeable, a simulated disk array + CPU cost model that regenerate
//! the paper's measurements, and the Section-5 analytical model (cpdb,
//! speedup surface).
//!
//! Start with [`Database`](crate::prelude::Database) and the
//! [`prelude`]; see `examples/quickstart.rs` for a tour and DESIGN.md /
//! EXPERIMENTS.md for the paper-reproduction map.

pub use rodb_compress as compress;
pub use rodb_core as core;
pub use rodb_cpu as cpu;
pub use rodb_engine as engine;
pub use rodb_io as io;
pub use rodb_model as model;
pub use rodb_storage as storage;
pub use rodb_tpch as tpch;
pub use rodb_trace as trace;
pub use rodb_types as types;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use rodb_compress::{choose_codec, AdvisorGoal, Codec, ColumnCompression, Dictionary};
    pub use rodb_core::{
        compare_layouts, materialize, predicted_speedup, projectivity_sweep, recommend_compression,
        recommend_layout, recommend_vertical_partitions, Database, ExperimentConfig,
        IngestSnapshot, IngestStats, IngestStore, LayoutComparison, MvRecommendation, ParallelInfo,
        QueryBuilder, QueryOutcome, QueryPattern, QueryResult, QueryService, ServiceReport,
        ServiceRequest,
    };
    pub use rodb_engine::{shared_row_scan, SharedScanOutput, SharedScanQuery};
    pub use rodb_engine::{
        AggFunc, AggPlan, AggSpec, AggStrategy, Aggregate, CmpOp, ColumnScanMode, ColumnScanner,
        ExecContext, MergeJoin, Operator, ParallelExec, ParallelOutcome, Predicate, RowScanner,
        RunReport, ScanLayout, ScanSpec, Sort, TupleBlock,
    };
    pub use rodb_model::{speedup_at, surface, Figure2Config, Platform, Workload};
    pub use rodb_storage::{
        BuildLayouts, Catalog, Layout, Morsel, Table, TableBuilder, WriteOptimizedStore,
    };
    pub use rodb_tpch::{
        load_lineitem, load_orders, orderdate_threshold, partkey_threshold, Variant,
    };
    pub use rodb_trace::{Json, MetricsRegistry, QueryTrace};
    pub use rodb_types::{
        Admission, Column, DataType, Error, HardwareConfig, IngestSpec, Result, Schema,
        ServiceSpec, SystemConfig, Value,
    };
}
