//! Qualitative-shape regression tests: every headline claim of the paper's
//! evaluation must hold in the simulated reproduction, at reduced scale.
//! These are the properties EXPERIMENTS.md reports quantitatively.

use rodb::prelude::*;
use rodb_core::{crossover_fraction, projectivity_sweep, scan_report};
use std::sync::Arc;

const ROWS: u64 = 30_000;
const VROWS: u64 = 60_000_000;

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        virtual_rows: VROWS,
        ..Default::default()
    }
}

fn lineitem() -> Arc<Table> {
    Arc::new(load_lineitem(ROWS, 1, 4096, BuildLayouts::both(), Variant::Plain).unwrap())
}

fn orders(variant: Variant) -> Arc<Table> {
    Arc::new(load_orders(ROWS, 1, 4096, BuildLayouts::both(), variant).unwrap())
}

#[test]
fn fig6_row_flat_column_grows_crossover_near_85pct() {
    let t = lineitem();
    let pred = Predicate::lt(0, partkey_threshold(0.10));
    let rows = projectivity_sweep(&t, ScanLayout::Row, &pred, &cfg()).unwrap();
    let cols = projectivity_sweep(&t, ScanLayout::Column, &pred, &cfg()).unwrap();

    // Row store is insensitive to projectivity.
    let r0 = rows[0].report.elapsed_s;
    for p in &rows {
        assert!((p.report.elapsed_s - r0).abs() / r0 < 0.05);
    }
    // Row elapsed ≈ 9.5 GB / 180 MB/s ≈ 53 s.
    assert!((50.0..56.0).contains(&r0), "row elapsed {r0}");
    // Column store grows monotonically in selected bytes.
    for w in cols.windows(2) {
        assert!(w[1].report.elapsed_s >= w[0].report.elapsed_s - 0.05);
    }
    // Both I/O-bound in the default configuration.
    assert!(rows[0].report.io_bound());
    assert!(cols[8].report.io_bound());
    // Crossover in the 80–100% band (paper: ~85%).
    let f = crossover_fraction(&rows, &cols).expect("crossover exists");
    assert!((0.75..1.0).contains(&f), "crossover at {f}");
    // Speedup approaches N when selecting 1/N of the bytes: 4 of 150.
    let s = rows[0].report.elapsed_s / cols[0].report.elapsed_s;
    assert!(s > 10.0, "1-attr speedup {s}");
}

#[test]
fn fig7_low_selectivity_flattens_column_cpu_only() {
    let t = lineitem();
    let hi = Predicate::lt(0, partkey_threshold(0.10));
    let lo = Predicate::lt(0, partkey_threshold(0.001));
    let cols_hi = projectivity_sweep(&t, ScanLayout::Column, &hi, &cfg()).unwrap();
    let cols_lo = projectivity_sweep(&t, ScanLayout::Column, &lo, &cfg()).unwrap();

    // I/O identical regardless of selectivity.
    for (a, b) in cols_hi.iter().zip(&cols_lo) {
        assert!((a.report.io.bytes_read - b.report.io.bytes_read).abs() < 1.0);
    }
    // At 0.1%, extra columns add little CPU; at 10% they add a lot.
    let growth_lo = cols_lo[15].report.cpu.user() / cols_lo[0].report.cpu.user();
    let growth_hi = cols_hi[15].report.cpu.user() / cols_hi[0].report.cpu.user();
    assert!(growth_lo < 1.5, "0.1% growth {growth_lo}");
    assert!(growth_hi > 2.0, "10% growth {growth_hi}");
    // Row store CPU unchanged by selectivity (it examines every tuple).
    let rows_hi = projectivity_sweep(&t, ScanLayout::Row, &hi, &cfg()).unwrap();
    let rows_lo = projectivity_sweep(&t, ScanLayout::Row, &lo, &cfg()).unwrap();
    let a = rows_hi[15].report.cpu.total();
    let b = rows_lo[15].report.cpu.total();
    assert!((a - b).abs() / a < 0.12, "row cpu {a} vs {b}");
}

#[test]
fn fig8_narrow_tuples_hide_memory_delays() {
    let t = orders(Variant::Plain);
    let pred = Predicate::lt(0, orderdate_threshold(0.10));
    let rows = projectivity_sweep(&t, ScanLayout::Row, &pred, &cfg()).unwrap();
    let cols = projectivity_sweep(&t, ScanLayout::Column, &pred, &cfg()).unwrap();
    // Still I/O bound; row ≈ 1.9 GB / 180 MB/s ≈ 11 s.
    assert!((10.0..12.0).contains(&rows[0].report.elapsed_s));
    // Memory delays invisible: the bus outruns the CPU on 32 B tuples.
    assert!(rows[6].report.cpu.usr_l2 < 0.1);
    assert!(cols[6].report.cpu.usr_l2 < 0.1);
    // Memory-resident (CPU-only) comparison favours rows at any
    // projectivity (§4.3).
    for (r, c) in rows.iter().zip(&cols) {
        assert!(
            c.report.cpu.user() > r.report.cpu.user() * 0.9,
            "attrs {}",
            r.attrs
        );
    }
    assert!(cols[6].report.cpu.user() > rows[6].report.cpu.user());
}

#[test]
fn fig9_compression_makes_columns_cpu_bound_and_for_beats_delta_on_cpu() {
    let z = orders(Variant::Compressed);
    let pred = Predicate::lt(0, orderdate_threshold(0.10));
    let cols = projectivity_sweep(&z, ScanLayout::Column, &pred, &cfg()).unwrap();
    // CPU-bound at full projection (crossover moved left).
    assert!(
        !cols[6].report.io_bound(),
        "compressed column scan must be CPU-bound"
    );
    // The FOR-delta order key column causes a CPU jump at attribute 2.
    let jump = cols[1].report.cpu.user() - cols[0].report.cpu.user();
    let later = cols[2].report.cpu.user() - cols[1].report.cpu.user();
    assert!(
        jump > 1.5 * later,
        "delta jump {jump} vs later step {later}"
    );
    // Compressed row store is cheaper on disk but dearer on user CPU than
    // the plain one.
    let plain = orders(Variant::Plain);
    let rows_z = projectivity_sweep(&z, ScanLayout::Row, &pred, &cfg()).unwrap();
    let rows_p = projectivity_sweep(&plain, ScanLayout::Row, &pred, &cfg()).unwrap();
    assert!(rows_z[6].report.io_s() < 0.6 * rows_p[6].report.io_s());
    assert!(rows_z[6].report.cpu.user() > rows_p[6].report.cpu.user());
    assert!(rows_z[6].report.cpu.sys < rows_p[6].report.cpu.sys);
}

#[test]
fn fig10_prefetch_depth_hurts_columns_not_rows() {
    let t = orders(Variant::Plain);
    let pred = Predicate::lt(0, orderdate_threshold(0.10));
    let proj: Vec<usize> = (0..7).collect();
    let mut col_prev = f64::INFINITY;
    for depth in [2usize, 8, 48] {
        let c = cfg().with_prefetch_depth(depth);
        let col = scan_report(&t, ScanLayout::Column, &proj, pred.clone(), &c).unwrap();
        let row = scan_report(&t, ScanLayout::Row, &proj, pred.clone(), &c).unwrap();
        // Column improves with depth; row is flat (single scan, no seeks).
        assert!(col.elapsed_s < col_prev);
        col_prev = col.elapsed_s;
        assert!((row.elapsed_s - 10.93).abs() < 0.5, "row at depth {depth}");
        assert!(row.io.seeks <= 2);
    }
}

#[test]
fn fig11_columns_beat_rows_under_competition_slow_variant_does_not() {
    let t = orders(Variant::Plain);
    let pred = Predicate::lt(0, orderdate_threshold(0.10));
    let proj: Vec<usize> = (0..7).collect();
    for depth in [48usize, 8, 2] {
        let c = cfg().with_prefetch_depth(depth).with_competing_scans(1);
        let row = scan_report(&t, ScanLayout::Row, &proj, pred.clone(), &c).unwrap();
        let col = scan_report(&t, ScanLayout::Column, &proj, pred.clone(), &c).unwrap();
        let slow = scan_report(&t, ScanLayout::ColumnSlow, &proj, pred.clone(), &c).unwrap();
        // The paper's counterintuitive result: pipelined columns win even at
        // 100% projection; the slow variant lands near the row store.
        assert!(col.elapsed_s < row.elapsed_s, "depth {depth}");
        assert!(
            (slow.elapsed_s - row.elapsed_s).abs() / row.elapsed_s < 0.25,
            "slow {} vs row {} at depth {depth}",
            slow.elapsed_s,
            row.elapsed_s
        );
        assert!(slow.elapsed_s > col.elapsed_s);
        // Competition slows everyone down vs. running alone.
        let alone = scan_report(
            &t,
            ScanLayout::Row,
            &proj,
            pred.clone(),
            &cfg().with_prefetch_depth(depth),
        )
        .unwrap();
        assert!(row.elapsed_s > 1.5 * alone.elapsed_s);
    }
}

#[test]
fn speedup_converges_to_one_at_full_projection_io_bound() {
    // §4.1: "the speedup of columns over rows converges to 1 when the query
    // accesses all attributes" — in the I/O-bound uncompressed case the two
    // curves meet near 100% projection (and cross there).
    let t = lineitem();
    let pred = Predicate::lt(0, partkey_threshold(0.10));
    let rows = projectivity_sweep(&t, ScanLayout::Row, &pred, &cfg()).unwrap();
    let cols = projectivity_sweep(&t, ScanLayout::Column, &pred, &cfg()).unwrap();
    let ratio = rows[15].report.elapsed_s / cols[15].report.elapsed_s;
    assert!((0.7..1.1).contains(&ratio), "full-projection ratio {ratio}");
}
