//! Property-style tests on the Section-5 analytical model: structural
//! invariants the equations must satisfy for any parameterization, checked
//! over many deterministically seeded random cases (no `proptest` in the
//! offline build).

use rodb::prelude::*;
use rodb_cpu::{CostParams, OpCosts};
use rodb_model::{self as model, ColumnSpec, ScannerCost};
use rodb_types::SplitMix64;

const CASES: u64 = 256;

fn random_cost(rng: &mut SplitMix64) -> ScannerCost {
    ScannerCost {
        i_sys: 1.0 + rng.f64() * 499.0,
        i_user: 1.0 + rng.f64() * 1999.0,
        mem_bytes: rng.f64() * 512.0,
    }
}

fn log_uniform(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    (lo.ln() + rng.f64() * (hi.ln() - lo.ln())).exp()
}

/// The parallel-resistor combination is commutative, bounded by its
/// smallest input, and monotone.
#[test]
fn par_is_sane() {
    let mut rng = SplitMix64::new(0x9A9);
    for _ in 0..CASES {
        let a = log_uniform(&mut rng, 0.001, 1e6);
        let b = log_uniform(&mut rng, 0.001, 1e6);
        let c = log_uniform(&mut rng, 0.001, 1e6);
        let ab = model::par(&[a, b]);
        assert!((ab - model::par(&[b, a])).abs() < 1e-9);
        assert!(ab <= a.min(b) + 1e-12);
        assert!(ab > 0.0);
        // Adding a stage can only slow the cascade down (eq 5).
        assert!(model::par(&[a, b, c]) <= ab + 1e-12);
    }
}

/// Disk-bound speedup equals the byte ratio; it never exceeds it.
#[test]
fn speedup_bounded_by_byte_ratio() {
    let mut rng = SplitMix64::new(0x5BB);
    for _ in 0..CASES {
        let row_bytes = 8.0 + rng.f64() * 248.0;
        let frac = 0.05 + rng.f64() * 0.95;
        let row_cost = random_cost(&mut rng);
        let col_cost = random_cost(&mut rng);
        let cpdb = 5.0 + rng.f64() * 495.0;
        let w = model::Workload {
            row_bytes,
            col_bytes: row_bytes * frac,
            row_cost,
            col_cost,
            extra_ops: 0.0,
        };
        let s = model::speedup(&w, &Platform::new(cpdb));
        assert!(s > 0.0);
        // Column CPU can make it smaller, disk can cap it, but the byte
        // ratio is the ceiling only when CPU favors columns no more than
        // bytes do; the universal ceiling is byte_ratio × cpu_ratio-ish —
        // check the clean disk-bound case instead:
        let huge = model::speedup(&w, &Platform::new(1e9));
        assert!((huge - 1.0 / frac).abs() < 1e-6);
    }
}

/// Raising cpdb (more CPU per disk byte) never hurts either store.
#[test]
fn store_rate_monotone_in_cpdb() {
    let mut rng = SplitMix64::new(0x50a7);
    for _ in 0..CASES {
        let bytes = 1.0 + rng.f64() * 255.0;
        let cost = random_cost(&mut rng);
        let cpdb = 5.0 + rng.f64() * 495.0;
        let r1 = model::store_rate(bytes, &cost, 0.0, &Platform::new(cpdb));
        let r2 = model::store_rate(bytes, &cost, 0.0, &Platform::new(cpdb * 2.0));
        assert!(r2 >= r1 - 1e-12);
    }
}

/// A store is io_bound at high cpdb and cpu-bound at low cpdb, with a
/// single transition.
#[test]
fn io_bound_transition_is_monotone() {
    let mut rng = SplitMix64::new(0x10b);
    for _ in 0..CASES {
        let bytes = 1.0 + rng.f64() * 255.0;
        let cost = random_cost(&mut rng);
        let mut was_io_bound = false;
        for cpdb in [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 1e5] {
            let now = model::io_bound(bytes, &cost, 0.0, &Platform::new(cpdb));
            if was_io_bound {
                assert!(now, "lost io-bound status as cpdb grew");
            }
            was_io_bound = now;
        }
        assert!(was_io_bound, "must become io-bound eventually");
    }
}

/// Calibrated scanner costs are positive, grow with projection width,
/// and shrink with selectivity.
#[test]
fn calibrated_costs_behave() {
    let mut rng = SplitMix64::new(0xCA1);
    for _ in 0..CASES {
        let ncols = rng.range_usize(1, 16);
        let sel = rng.f64();
        let width = 1.0 + rng.f64() * 63.0;
        let costs = OpCosts::default();
        let params = CostParams::default();
        let cols: Vec<ColumnSpec> = vec![ColumnSpec::raw(width); ncols];
        let c = model::col_scanner_cost(&costs, &params, 3.0, 131072.0, &cols, sel);
        assert!(c.i_sys > 0.0 && c.i_user > 0.0 && c.mem_bytes >= 0.0);
        let more = model::col_scanner_cost(
            &costs,
            &params,
            3.0,
            131072.0,
            &vec![ColumnSpec::raw(width); ncols + 1],
            sel,
        );
        assert!(more.i_user >= c.i_user);
        assert!(more.i_sys > c.i_sys);
        let r = model::row_scanner_cost(
            &costs,
            &params,
            3.0,
            131072.0,
            width * ncols as f64,
            sel,
            &cols,
        );
        assert!(r.i_user > 0.0);
        // Row memory traffic is the whole tuple regardless of projection.
        assert!((r.mem_bytes - width * ncols as f64).abs() < 1e-9);
    }
}

/// Figure 2 cells are finite, positive, and capped by the projection's
/// byte ratio (2× at 50%).
#[test]
fn figure2_cells_bounded() {
    let mut rng = SplitMix64::new(0xF16);
    for _ in 0..CASES {
        let width = 8.0 + rng.f64() * 56.0;
        let cpdb = 5.0 + rng.f64() * 295.0;
        let cfg = Figure2Config::default();
        let s = speedup_at(&cfg, width, cpdb);
        assert!(s.is_finite());
        assert!(s > 0.0);
        assert!(s <= 2.0 + 1e-9);
    }
}
