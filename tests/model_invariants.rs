//! Property tests on the Section-5 analytical model: structural invariants
//! the equations must satisfy for any parameterization.

use proptest::prelude::*;
use rodb::prelude::*;
use rodb_model::{self as model, ColumnSpec, ScannerCost};
use rodb_cpu::{CostParams, OpCosts};

fn cost_strategy() -> impl Strategy<Value = ScannerCost> {
    (1.0f64..500.0, 1.0f64..2000.0, 0.0f64..512.0).prop_map(|(i_sys, i_user, mem_bytes)| {
        ScannerCost {
            i_sys,
            i_user,
            mem_bytes,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parallel-resistor combination is commutative, bounded by its
    /// smallest input, and monotone.
    #[test]
    fn par_is_sane(a in 0.001f64..1e6, b in 0.001f64..1e6, c in 0.001f64..1e6) {
        let ab = model::par(&[a, b]);
        prop_assert!((ab - model::par(&[b, a])).abs() < 1e-9);
        prop_assert!(ab <= a.min(b) + 1e-12);
        prop_assert!(ab > 0.0);
        // Adding a stage can only slow the cascade down (eq 5).
        prop_assert!(model::par(&[a, b, c]) <= ab + 1e-12);
    }

    /// Disk-bound speedup equals the byte ratio; it never exceeds it.
    #[test]
    fn speedup_bounded_by_byte_ratio(
        row_bytes in 8.0f64..256.0,
        frac in 0.05f64..1.0,
        row_cost in cost_strategy(),
        col_cost in cost_strategy(),
        cpdb in 5.0f64..500.0,
    ) {
        let w = model::Workload {
            row_bytes,
            col_bytes: row_bytes * frac,
            row_cost,
            col_cost,
            extra_ops: 0.0,
        };
        let s = model::speedup(&w, &Platform::new(cpdb));
        prop_assert!(s > 0.0);
        // Column CPU can make it smaller, disk can cap it, but the byte
        // ratio is the ceiling only when CPU favors columns no more than
        // bytes do; the universal ceiling is byte_ratio × cpu_ratio-ish —
        // check the clean disk-bound case instead:
        let huge = model::speedup(&w, &Platform::new(1e9));
        prop_assert!((huge - 1.0 / frac).abs() < 1e-6);
    }

    /// Raising cpdb (more CPU per disk byte) never hurts either store.
    #[test]
    fn store_rate_monotone_in_cpdb(
        bytes in 1.0f64..256.0,
        cost in cost_strategy(),
        cpdb in 5.0f64..500.0,
    ) {
        let r1 = model::store_rate(bytes, &cost, 0.0, &Platform::new(cpdb));
        let r2 = model::store_rate(bytes, &cost, 0.0, &Platform::new(cpdb * 2.0));
        prop_assert!(r2 >= r1 - 1e-12);
    }

    /// A store is io_bound at high cpdb and cpu-bound at low cpdb, with a
    /// single transition.
    #[test]
    fn io_bound_transition_is_monotone(
        bytes in 1.0f64..256.0,
        cost in cost_strategy(),
    ) {
        let mut was_io_bound = false;
        for cpdb in [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 1e5] {
            let now = model::io_bound(bytes, &cost, 0.0, &Platform::new(cpdb));
            if was_io_bound {
                prop_assert!(now, "lost io-bound status as cpdb grew");
            }
            was_io_bound = now;
        }
        prop_assert!(was_io_bound, "must become io-bound eventually");
    }

    /// Calibrated scanner costs are positive, grow with projection width,
    /// and shrink with selectivity.
    #[test]
    fn calibrated_costs_behave(
        ncols in 1usize..16,
        sel in 0.0f64..1.0,
        width in 1.0f64..64.0,
    ) {
        let costs = OpCosts::default();
        let params = CostParams::default();
        let cols: Vec<ColumnSpec> = vec![ColumnSpec::raw(width); ncols];
        let c = model::col_scanner_cost(&costs, &params, 3.0, 131072.0, &cols, sel);
        prop_assert!(c.i_sys > 0.0 && c.i_user > 0.0 && c.mem_bytes >= 0.0);
        let more = model::col_scanner_cost(
            &costs, &params, 3.0, 131072.0,
            &vec![ColumnSpec::raw(width); ncols + 1], sel,
        );
        prop_assert!(more.i_user >= c.i_user);
        prop_assert!(more.i_sys > c.i_sys);
        let r = model::row_scanner_cost(
            &costs, &params, 3.0, 131072.0, width * ncols as f64, sel, &cols,
        );
        prop_assert!(r.i_user > 0.0);
        // Row memory traffic is the whole tuple regardless of projection.
        prop_assert!((r.mem_bytes - width * ncols as f64).abs() < 1e-9);
    }

    /// Figure 2 cells are finite, positive, and capped by the projection's
    /// byte ratio (2× at 50%).
    #[test]
    fn figure2_cells_bounded(width in 8.0f64..64.0, cpdb in 5.0f64..300.0) {
        let cfg = Figure2Config::default();
        let s = speedup_at(&cfg, width, cpdb);
        prop_assert!(s.is_finite());
        prop_assert!(s > 0.0);
        prop_assert!(s <= 2.0 + 1e-9);
    }
}
