//! Morsel-driven parallel execution must be indistinguishable from the
//! serial engine in its *results* — for every layout, predicate shape,
//! aggregation strategy and thread count — and its merged accounting must
//! equal the sum of its parts.

use rodb::cpu::CpuMeter;
use rodb::io::{merge_parallel, CacheStats, IoStats, RecoveryStats};
use rodb::prelude::*;
use std::sync::Arc;

const THREADS: [usize; 4] = [1, 2, 4, 7];

fn db(n: usize) -> Database {
    let schema = Arc::new(
        Schema::new(vec![
            Column::int("id"),
            Column::int("grp"),
            Column::int("val"),
            Column::text("tag", 6),
        ])
        .unwrap(),
    );
    let mut b = TableBuilder::new("t", schema, 4096, BuildLayouts::both()).unwrap();
    for i in 0..n {
        b.push_row(&[
            Value::Int(i as i32),
            // Nondecreasing in row order, so sorted aggregation over a plain
            // scan is legal both serially and per morsel.
            Value::Int((i / 512) as i32),
            Value::Int((i % 997) as i32),
            Value::text(["aa", "bb", "cc"][i % 3]),
        ])
        .unwrap();
    }
    let mut db = Database::new();
    db.register(b.finish().unwrap());
    db
}

fn scan_query(db: &Database, layout: ScanLayout) -> QueryBuilder {
    db.query("t")
        .unwrap()
        .layout(layout)
        .select(&["id", "val", "tag"])
        .unwrap()
        .filter("val", CmpOp::Lt, 400)
        .unwrap()
        .filter("tag", CmpOp::Ne, "bb")
        .unwrap()
}

#[test]
fn parallel_row_scan_equals_serial() {
    let db = db(20_000);
    let serial = scan_query(&db, ScanLayout::Row).run_collect().unwrap();
    assert!(serial.parallel.is_none());
    for t in THREADS {
        let par = scan_query(&db, ScanLayout::Row)
            .threads(t)
            .run_collect()
            .unwrap();
        assert_eq!(par.rows, serial.rows, "row scan, {t} threads");
        assert_eq!(par.report.rows, serial.report.rows);
        assert_eq!(par.parallel.is_some(), t > 1);
    }
}

#[test]
fn parallel_column_scan_equals_serial() {
    let db = db(20_000);
    let serial = scan_query(&db, ScanLayout::Column).run_collect().unwrap();
    for t in THREADS {
        let par = scan_query(&db, ScanLayout::Column)
            .threads(t)
            .run_collect()
            .unwrap();
        assert_eq!(par.rows, serial.rows, "column scan, {t} threads");
    }
}

#[test]
fn parallel_hash_aggregation_equals_serial() {
    let db = db(30_000);
    let q = |threads: usize| {
        db.query("t")
            .unwrap()
            .layout(ScanLayout::Column)
            .select(&["grp", "val"])
            .unwrap()
            .group_by("grp")
            .unwrap()
            .aggregate(AggSpec::count())
            .aggregate(AggSpec::sum(1))
            .aggregate(AggSpec::min(1))
            .aggregate(AggSpec::max(1))
            .aggregate(AggSpec::avg(1))
            .threads(threads)
            .run_collect()
            .unwrap()
    };
    let serial = q(1);
    assert!(!serial.rows.is_empty());
    for t in THREADS {
        let par = q(t);
        assert_eq!(par.rows, serial.rows, "hash agg, {t} threads");
    }
}

#[test]
fn parallel_sorted_aggregation_equals_serial() {
    let db = db(30_000);
    // grp is nondecreasing in row order, so the sorted strategy accepts a
    // plain scan; morsel boundaries split group runs, which the partial
    // merge must stitch back together.
    let q = |layout: ScanLayout, threads: usize| {
        db.query("t")
            .unwrap()
            .layout(layout)
            .select(&["grp", "val"])
            .unwrap()
            .group_by("grp")
            .unwrap()
            .aggregate(AggSpec::count())
            .aggregate(AggSpec::sum(1))
            .sorted_aggregation()
            .threads(threads)
            .run_collect()
            .unwrap()
    };
    for layout in [ScanLayout::Row, ScanLayout::Column] {
        let serial = q(layout, 1);
        assert_eq!(serial.rows.len(), 30_000 / 512 + 1);
        for t in THREADS {
            let par = q(layout, t);
            assert_eq!(par.rows, serial.rows, "sorted agg, {layout}, {t} threads");
        }
    }
}

#[test]
fn research_layouts_fall_back_to_serial() {
    let db = db(5_000);
    for layout in [ScanLayout::ColumnSlow, ScanLayout::ColumnSingleIterator] {
        let serial = scan_query(&db, layout).run_collect().unwrap();
        let par = scan_query(&db, layout).threads(4).run_collect().unwrap();
        assert_eq!(par.rows, serial.rows);
        assert!(par.parallel.is_none(), "{layout} must not parallelize");
    }
}

#[test]
fn parallel_report_is_coherent() {
    let db = db(100_000);
    let serial = scan_query(&db, ScanLayout::Column).run().unwrap();
    let par = scan_query(&db, ScanLayout::Column)
        .threads(4)
        .run()
        .unwrap();
    let info = par.parallel.expect("parallel run");
    assert_eq!(info.threads, 4);
    assert!(info.morsels >= 4);
    assert!(info.wall_s > 0.0);
    assert!(info.cpu_crit_s > 0.0);
    // User-mode CPU work is parallelism-invariant up to re-decoding the
    // boundary page each morsel window shares with its neighbour.
    let (a, b) = (par.report.cpu.user(), serial.report.cpu.user());
    assert!(a >= b - 1e-12, "parallel lost work: {a} vs {b}");
    assert!((a - b) / b < 0.15, "cpu user {a} vs {b}");
    // Same data is read, plus at most those boundary pages.
    assert!(par.report.io.bytes_read >= serial.report.io.bytes_read - 1.0);
    assert!(par.report.io.bytes_read < serial.report.io.bytes_read * 1.25);
    // Interleaved workers pay extra head switches (and the kernel work that
    // goes with them): the parallel run never reports fewer seeks or less
    // sys time than the serial one.
    assert!(par.report.io.seeks >= serial.report.io.seeks);
    assert!(par.report.cpu.sys >= serial.report.cpu.sys);
    assert!(par.report.elapsed_s > 0.0);
}

// ---- degenerate shapes -------------------------------------------------

#[test]
fn parallel_scan_of_empty_table() {
    let db = db(0);
    for layout in [ScanLayout::Row, ScanLayout::Column] {
        for t in THREADS {
            let res = scan_query(&db, layout).threads(t).run_collect().unwrap();
            assert!(res.rows.is_empty(), "{layout}, {t} threads");
        }
        // Grouped aggregation over zero rows yields zero groups.
        let agg = db
            .query("t")
            .unwrap()
            .layout(layout)
            .select(&["grp", "val"])
            .unwrap()
            .group_by("grp")
            .unwrap()
            .aggregate(AggSpec::count())
            .threads(4)
            .run_collect()
            .unwrap();
        assert!(agg.rows.is_empty(), "{layout} empty agg");
    }
}

#[test]
fn parallel_scan_of_single_row_table() {
    let db = db(1);
    for layout in [ScanLayout::Row, ScanLayout::Column] {
        let serial = scan_query(&db, layout).run_collect().unwrap();
        assert_eq!(serial.rows.len(), 1);
        for t in THREADS {
            let par = scan_query(&db, layout).threads(t).run_collect().unwrap();
            assert_eq!(par.rows, serial.rows, "{layout}, {t} threads");
        }
    }
}

#[test]
fn more_threads_than_morsels_is_harmless() {
    // 100 rows fit in a handful of pages, so 16 workers outnumber the
    // morsels; the spare workers must idle, not misbehave.
    let db = db(100);
    for layout in [ScanLayout::Row, ScanLayout::Column] {
        let serial = scan_query(&db, layout).run_collect().unwrap();
        let par = scan_query(&db, layout).threads(16).run_collect().unwrap();
        assert_eq!(par.rows, serial.rows, "{layout}, 16 threads");
        if let Some(info) = par.parallel {
            assert!(info.morsels <= 16);
        }
    }
}

#[test]
fn zero_threads_is_rejected() {
    let db = db(100);
    let err = scan_query(&db, ScanLayout::Row)
        .threads(0)
        .run_collect()
        .unwrap_err();
    assert!(
        matches!(err, Error::InvalidConfig(_)),
        "expected InvalidConfig, got {err:?}"
    );
}

// ---- accounting-merge units -------------------------------------------

#[test]
fn cpu_meter_merge_equals_single_meter() {
    let hw = HardwareConfig::default();
    // Split the same event stream across three meters.
    let mut parts = [
        CpuMeter::default(),
        CpuMeter::default(),
        CpuMeter::default(),
    ];
    let mut whole = CpuMeter::default();
    let events: [&dyn Fn(&mut CpuMeter); 5] = [
        &|m| m.row_iter(10_000.0),
        &|m| m.predicate(10_000.0, 700.0),
        &|m| m.io_kernel_work(5.0e8, 128 * 1024, 12.0),
        &|m| m.memory_access(&HardwareConfig::default(), 4.0e6, 1.0e6, 4.0),
        &|m| m.project(700.0, 3.0, 8_400.0),
    ];
    for (i, ev) in events.iter().enumerate() {
        ev(&mut parts[i % parts.len()]);
        ev(&mut whole);
    }
    let mut merged = CpuMeter::default();
    for p in &parts {
        merged.merge(p);
    }
    assert_eq!(merged.counters(), whole.counters());
    let (m, w) = (merged.breakdown(&hw), whole.breakdown(&hw));
    assert!((m.total() - w.total()).abs() < 1e-12);
    assert!((m.sys - w.sys).abs() < 1e-12);
}

#[test]
fn io_stats_merge_sums_every_field() {
    let a = IoStats {
        bytes_read: 1.0e6,
        seeks: 3,
        bursts: 5,
        comp_bursts: 1,
        transfer_s: 0.5,
        seek_s: 0.015,
        comp_s: 0.1,
        pages_skipped: 11,
        recovery: RecoveryStats {
            retries: 2,
            repairs: 1,
            quarantined_pages: 1,
            dropped_rows: 100,
            wal_replayed: 3,
            wal_discarded: 1,
        },
        cache: CacheStats {
            hits: 8,
            misses: 2,
            evictions: 1,
            prefetched: 4,
        },
    };
    let b = IoStats {
        bytes_read: 2.0e6,
        seeks: 4,
        bursts: 7,
        comp_bursts: 2,
        transfer_s: 1.0,
        seek_s: 0.020,
        comp_s: 0.2,
        pages_skipped: 6,
        recovery: RecoveryStats {
            retries: 5,
            repairs: 3,
            quarantined_pages: 0,
            dropped_rows: 20,
            wal_replayed: 2,
            wal_discarded: 0,
        },
        cache: CacheStats {
            hits: 1,
            misses: 9,
            evictions: 2,
            prefetched: 0,
        },
    };
    let mut m = a;
    m.merge(&b);
    assert_eq!(m.bytes_read, 3.0e6);
    assert_eq!(m.seeks, 7);
    assert_eq!(m.bursts, 12);
    assert_eq!(m.comp_bursts, 3);
    assert_eq!(m.pages_skipped, 17);
    assert_eq!(m.recovery.retries, 7);
    assert_eq!(m.recovery.repairs, 4);
    assert_eq!(m.recovery.quarantined_pages, 1);
    assert_eq!(m.recovery.dropped_rows, 120);
    assert_eq!(m.recovery.wal_replayed, 5);
    assert_eq!(m.recovery.wal_discarded, 1);
    assert_eq!(m.cache.hits, 9);
    assert_eq!(m.cache.misses, 11);
    assert_eq!(m.cache.evictions, 3);
    assert_eq!(m.cache.prefetched, 4);
    assert!((m.transfer_s - 1.5).abs() < 1e-12);
    assert!((m.seek_s - 0.035).abs() < 1e-12);
    assert!((m.comp_s - 0.3).abs() < 1e-12);
    assert!((m.total_s() - (a.total_s() + b.total_s())).abs() < 1e-12);
}

#[test]
fn merge_parallel_charges_switch_seeks_only_with_real_parallelism() {
    let seek_s = 0.005;
    let w = IoStats {
        bytes_read: 1.0e6,
        seeks: 2,
        bursts: 10,
        transfer_s: 0.5,
        seek_s: 2.0 * seek_s,
        ..Default::default()
    };
    // One worker: a plain sum, nothing recharged.
    let solo = merge_parallel(&[w], 1, seek_s);
    assert_eq!(solo.seeks, 2);
    assert!((solo.seek_s - w.seek_s).abs() < 1e-12);
    // Two workers sharing the array: every burst pays a head switch.
    let duo = merge_parallel(&[w, w], 2, seek_s);
    assert_eq!(duo.seeks, 20); // max(bursts, seeks) of the summed stats
    let expected = 2.0 * w.seek_s + (20 - 4) as f64 * seek_s;
    assert!((duo.seek_s - expected).abs() < 1e-12, "{}", duo.seek_s);
    assert_eq!(duo.bytes_read, 2.0e6);
}

#[test]
fn settle_io_kernel_work_is_idempotent() {
    let db = db(10_000);
    let t = db.table("t").unwrap();
    let ctx = ExecContext::default_ctx();
    let mut scan = RowScanner::new(t, vec![0, 1], vec![], &ctx).unwrap();
    while scan.next().unwrap().is_some() {}
    ctx.settle_io_kernel_work();
    let after_first = *ctx.meter.borrow().counters();
    assert!(after_first.io_bytes > 0.0);
    // Settling again without new disk traffic must change nothing.
    ctx.settle_io_kernel_work();
    ctx.settle_io_kernel_work();
    assert_eq!(*ctx.meter.borrow().counters(), after_first);
}
