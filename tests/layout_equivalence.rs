//! Cross-crate correctness: every physical path through the system must
//! produce identical query results — row vs column layout, plain vs
//! compressed storage, pipelined vs single-iterator scanners — on the
//! paper's TPC-H-derived workload.

use rodb::prelude::*;
use std::sync::Arc;

const ROWS: u64 = 8_000;

fn all_layouts() -> [ScanLayout; 4] {
    [
        ScanLayout::Row,
        ScanLayout::Column,
        ScanLayout::ColumnSlow,
        ScanLayout::ColumnSingleIterator,
    ]
}

fn collect(
    t: &Arc<Table>,
    layout: ScanLayout,
    proj: &[usize],
    preds: Vec<Predicate>,
) -> Vec<Vec<Value>> {
    let q = QueryBuilder::new(
        t.clone(),
        HardwareConfig::default(),
        SystemConfig::default(),
    )
    .layout(layout)
    .select_indices(proj);
    let q = preds
        .into_iter()
        .fold(q, |q, p| q.filter_pred(p).expect("valid predicate"));
    q.run_collect().expect("query runs").rows
}

#[test]
fn lineitem_all_layouts_agree_across_selectivities() {
    let t = Arc::new(load_lineitem(ROWS, 7, 4096, BuildLayouts::both(), Variant::Plain).unwrap());
    for sel in [0.0, 0.001, 0.1, 0.5, 1.0] {
        let preds = vec![Predicate::lt(0, partkey_threshold(sel))];
        for proj in [
            vec![0],
            vec![0, 1, 5],
            vec![10, 6, 0],
            (0..16).collect::<Vec<_>>(),
        ] {
            let baseline = collect(&t, ScanLayout::Row, &proj, preds.clone());
            for layout in all_layouts() {
                let got = collect(&t, layout, &proj, preds.clone());
                assert_eq!(got, baseline, "sel {sel} proj {proj:?} layout {layout}");
            }
        }
    }
}

#[test]
fn compressed_tables_agree_with_plain() {
    let plain = Arc::new(load_orders(ROWS, 3, 4096, BuildLayouts::both(), Variant::Plain).unwrap());
    let z =
        Arc::new(load_orders(ROWS, 3, 4096, BuildLayouts::both(), Variant::Compressed).unwrap());
    for sel in [0.01, 0.25, 1.0] {
        let preds = vec![Predicate::lt(0, orderdate_threshold(sel))];
        for proj in [vec![0, 1], vec![3, 4, 0], (0..7).collect::<Vec<_>>()] {
            let baseline = collect(&plain, ScanLayout::Row, &proj, preds.clone());
            for layout in all_layouts() {
                let got = collect(&z, layout, &proj, preds.clone());
                assert_eq!(
                    got, baseline,
                    "sel {sel} proj {proj:?} layout {layout} (-Z)"
                );
            }
        }
    }
}

#[test]
fn pax_rows_agree_with_plain_rows_and_columns() {
    let plain =
        Arc::new(load_lineitem(ROWS, 4, 4096, BuildLayouts::both(), Variant::Plain).unwrap());
    let pax = Arc::new(load_lineitem(ROWS, 4, 4096, BuildLayouts::both(), Variant::Pax).unwrap());
    for sel in [0.01, 0.5] {
        let preds = vec![Predicate::lt(0, partkey_threshold(sel))];
        for proj in [vec![0usize, 5], vec![10, 0], (0..16).collect::<Vec<_>>()] {
            let baseline = collect(&plain, ScanLayout::Row, &proj, preds.clone());
            assert_eq!(
                collect(&pax, ScanLayout::Row, &proj, preds.clone()),
                baseline,
                "pax rows, sel {sel} proj {proj:?}"
            );
            assert_eq!(
                collect(&pax, ScanLayout::Column, &proj, preds.clone()),
                baseline,
                "pax table columns, sel {sel} proj {proj:?}"
            );
        }
    }
}

#[test]
fn lineitem_z_row_and_column_agree() {
    let z =
        Arc::new(load_lineitem(ROWS, 5, 4096, BuildLayouts::both(), Variant::Compressed).unwrap());
    let preds = vec![Predicate::lt(0, partkey_threshold(0.05))];
    let proj: Vec<usize> = (0..16).collect();
    let row = collect(&z, ScanLayout::Row, &proj, preds.clone());
    let col = collect(&z, ScanLayout::Column, &proj, preds);
    assert!(!row.is_empty());
    assert_eq!(row, col);
}

#[test]
fn aggregates_agree_across_layouts_and_strategies() {
    let t = Arc::new(load_lineitem(ROWS, 11, 4096, BuildLayouts::both(), Variant::Plain).unwrap());
    let mut results = Vec::new();
    for layout in all_layouts() {
        let q = QueryBuilder::new(
            t.clone(),
            HardwareConfig::default(),
            SystemConfig::default(),
        )
        .layout(layout)
        // group by l_returnflag; aggregate quantity and price
        .select_indices(&[6, 4, 5])
        .filter_pred(Predicate::lt(0, partkey_threshold(0.5)))
        .unwrap()
        .group_by("l_returnflag")
        .unwrap()
        .aggregate(AggSpec::count())
        .aggregate(AggSpec::sum(1))
        .aggregate(AggSpec::min(2))
        .aggregate(AggSpec::max(2));
        let rows = q.run_collect().expect("agg runs").rows;
        results.push(rows);
    }
    for r in &results[1..] {
        assert_eq!(*r, results[0]);
    }
    // Oracle: recompute from a raw read.
    let all = t.read_all(Layout::Row).unwrap();
    let thr = partkey_threshold(0.5);
    let mut count = 0i64;
    for row in &all {
        if row[0].as_int().unwrap() < thr {
            count += 1;
        }
    }
    let total: i64 = results[0].iter().map(|r| r[1].as_num().unwrap()).sum();
    assert_eq!(total, count);
}

#[test]
fn merge_join_agrees_with_nested_loop_oracle() {
    let orders = Arc::new(load_orders(500, 2, 4096, BuildLayouts::both(), Variant::Plain).unwrap());
    let lineitem =
        Arc::new(load_lineitem(2_000, 2, 4096, BuildLayouts::both(), Variant::Plain).unwrap());
    let ctx = ExecContext::default_ctx();
    let o_scan = ScanSpec::new(orders.clone(), ScanLayout::Column, vec![1, 0])
        .build(&ctx)
        .unwrap();
    let l_scan = ScanSpec::new(lineitem.clone(), ScanLayout::Column, vec![1, 4])
        .build(&ctx)
        .unwrap();
    let mut join = MergeJoin::new(o_scan, 0, l_scan, 0, &ctx).unwrap();
    let mut got = Vec::new();
    while let Some(b) = join.next().unwrap() {
        got.extend(b.rows().unwrap());
    }

    // Oracle.
    let o_rows = orders.read_all(Layout::Row).unwrap();
    let l_rows = lineitem.read_all(Layout::Row).unwrap();
    let mut expect = Vec::new();
    for o in &o_rows {
        for l in &l_rows {
            if o[1] == l[1] {
                expect.push(vec![o[1].clone(), o[0].clone(), l[1].clone(), l[4].clone()]);
            }
        }
    }
    assert_eq!(got.len(), expect.len());
    assert_eq!(got, expect);
    assert!(!got.is_empty(), "join should produce matches");
}

#[test]
fn block_positions_point_back_at_source_rows() {
    let t = Arc::new(load_orders(3_000, 9, 4096, BuildLayouts::both(), Variant::Plain).unwrap());
    let all = t.read_all(Layout::Row).unwrap();
    let ctx = ExecContext::default_ctx();
    let mut scan = ScanSpec::new(t.clone(), ScanLayout::Column, vec![2, 5])
        .with_predicates(vec![Predicate::lt(0, orderdate_threshold(0.2))])
        .build(&ctx)
        .unwrap();
    let mut seen = 0;
    while let Some(b) = scan.next().unwrap() {
        for i in 0..b.count() {
            let pos = b.position(i).unwrap() as usize;
            assert_eq!(b.value(i, 0).unwrap(), all[pos][2]);
            assert_eq!(b.value(i, 1).unwrap(), all[pos][5]);
            seen += 1;
        }
    }
    assert!(seen > 0);
}
