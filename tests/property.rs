//! Property-style tests over randomly generated schemas, data, codecs, and
//! queries: the row and column paths must stay observationally identical,
//! and compression must stay lossless, under arbitrary inputs.
//!
//! Inputs are generated with the workspace's deterministic [`SplitMix64`]
//! generator (the offline build has no `proptest`); each property runs over
//! many seeded cases.

use rodb::prelude::*;
use rodb_types::SplitMix64;
use std::sync::Arc;

const CASES: u64 = 64;

// ---------- generators -------------------------------------------------

#[derive(Debug, Clone)]
struct RandTable {
    schema: Arc<Schema>,
    comps: Vec<ColumnCompression>,
    rows: Vec<Vec<Value>>,
}

fn random_dtype(rng: &mut SplitMix64) -> DataType {
    // 3:1 ints to text, like the original strategy.
    if rng.below(4) < 3 {
        DataType::Int
    } else {
        DataType::Text(rng.range_usize(1, 20))
    }
}

/// A codec compatible with the column's type and the generated value domain.
fn codec_for(dtype: DataType, domain: i32, sorted: bool) -> Vec<ColumnCompression> {
    let mut out = vec![ColumnCompression::none()];
    match dtype {
        DataType::Int => {
            let bits = rodb_compress::bits_for(domain.max(1) as u64);
            out.push(ColumnCompression::new(Codec::BitPack { bits }, None).unwrap());
            out.push(ColumnCompression::new(Codec::For { bits }, None).unwrap());
            if sorted {
                out.push(ColumnCompression::new(Codec::ForDelta { bits }, None).unwrap());
            }
        }
        DataType::Text(n) => {
            if n >= 2 {
                out.push(
                    ColumnCompression::new(
                        Codec::TextPack {
                            bytes: (n as u16).min(2),
                        },
                        None,
                    )
                    .unwrap(),
                );
            }
        }
        DataType::Long => {}
    }
    out
}

fn random_table(rng: &mut SplitMix64) -> RandTable {
    let ncols = rng.range_usize(1, 5);
    let nrows = rng.range_usize(0, 400);
    let mut schema_cols = Vec::new();
    let mut comps = Vec::new();
    for i in 0..ncols {
        let dt = random_dtype(rng);
        schema_cols.push(Column::new(format!("c{i}"), dt));
        // domain 200 keeps dict/bitpack/FOR in range; sorted col is c0.
        let options = codec_for(dt, 200 + nrows as i32, i == 0);
        let codec_idx = rng.range_usize(0, 4);
        comps.push(options[codec_idx % options.len()].clone());
    }
    let schema = Arc::new(Schema::new(schema_cols).unwrap());
    let mut rows = Vec::with_capacity(nrows);
    let mut sorted_val = 0i32;
    for _ in 0..nrows {
        let mut row = Vec::new();
        for (ci, c) in schema.columns().iter().enumerate() {
            match c.dtype {
                DataType::Int => {
                    if ci == 0 {
                        // Non-decreasing for FOR-delta compatibility.
                        sorted_val += rng.range_i32(0, 3);
                        row.push(Value::Int(sorted_val));
                    } else {
                        row.push(Value::Int(rng.range_i32(0, 200)));
                    }
                }
                DataType::Text(n) => {
                    let letter = b'a' + rng.below(4) as u8;
                    let len = 1.min(n);
                    row.push(Value::Text(vec![letter; len].into()));
                }
                DataType::Long => unreachable!(),
            }
        }
        rows.push(row);
    }
    RandTable {
        schema,
        comps,
        rows,
    }
}

fn build(t: &RandTable) -> Table {
    let mut b = TableBuilder::with_compression(
        "prop",
        t.schema.clone(),
        1024,
        BuildLayouts::both(),
        t.comps.clone(),
    )
    .unwrap();
    for r in &t.rows {
        b.push_row(r).unwrap();
    }
    b.finish().unwrap()
}

// ---------- properties --------------------------------------------------

/// Loading through any codec mix is lossless in both layouts.
#[test]
fn storage_roundtrip_lossless() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5705 + case);
        let t = random_table(&mut rng);
        let table = build(&t);
        let via_row = table.read_all(Layout::Row).unwrap();
        let via_col = table.read_all(Layout::Column).unwrap();
        assert_eq!(via_row.len(), t.rows.len());
        assert_eq!(&via_row, &via_col);
        // Text values come back padded; compare through re-encoding.
        for (orig, got) in t.rows.iter().zip(&via_row) {
            for ((o, g), c) in orig.iter().zip(got).zip(t.schema.columns()) {
                let mut oe = Vec::new();
                o.encode_into(c.dtype, &mut oe).unwrap();
                let mut ge = Vec::new();
                g.encode_into(c.dtype, &mut ge).unwrap();
                assert_eq!(oe, ge);
            }
        }
    }
}

/// Every scanner produces identical results for random predicates.
#[test]
fn scanners_agree_on_random_queries() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5CA9 + case);
        let t = random_table(&mut rng);
        let table = Arc::new(build(&t));
        let n = t.schema.len();
        let pred_col = rng.range_usize(0, 5) % n;
        let threshold = rng.range_i32(0, 250);
        let proj_mask = rng.range_usize(1, 31) as u8;
        let projection: Vec<usize> = (0..n).filter(|i| proj_mask & (1 << i) != 0).collect();
        let projection = if projection.is_empty() {
            vec![0]
        } else {
            projection
        };
        let preds = if t.schema.dtype(pred_col).is_int() {
            vec![Predicate::lt(pred_col, threshold)]
        } else {
            vec![Predicate::eq(pred_col, "a")]
        };
        let run = |layout| {
            QueryBuilder::new(
                table.clone(),
                HardwareConfig::default(),
                SystemConfig::default(),
            )
            .layout(layout)
            .select_indices(&projection)
            .filter_pred(preds[0].clone())
            .unwrap()
            .run_collect()
            .unwrap()
            .rows
        };
        let baseline = run(ScanLayout::Row);
        assert_eq!(run(ScanLayout::Column), baseline.clone());
        assert_eq!(run(ScanLayout::ColumnSlow), baseline.clone());
        assert_eq!(run(ScanLayout::ColumnSingleIterator), baseline.clone());

        // Oracle: filter + project the original rows.
        let mut expect = Vec::new();
        for row in &t.rows {
            if preds[0].eval_value(&normalize(&row[pred_col], t.schema.dtype(pred_col))) {
                expect.push(
                    projection
                        .iter()
                        .map(|&c| normalize(&row[c], t.schema.dtype(c)))
                        .collect::<Vec<_>>(),
                );
            }
        }
        assert_eq!(baseline, expect);
    }
}

/// Scalar aggregates match a recomputation from raw data.
#[test]
fn aggregates_match_oracle() {
    let mut done = 0u64;
    let mut seed = 0u64;
    while done < CASES {
        seed += 1;
        let mut rng = SplitMix64::new(0xA66 + seed);
        let t = random_table(&mut rng);
        if !t.schema.dtype(0).is_int() {
            continue; // the original property assumed an int first column
        }
        done += 1;
        let threshold = rng.range_i32(0, 250);
        let table = Arc::new(build(&t));
        let res = QueryBuilder::new(table, HardwareConfig::default(), SystemConfig::default())
            .layout(ScanLayout::Column)
            .select_indices(&[0])
            .filter_pred(Predicate::lt(0, threshold))
            .unwrap()
            .aggregate(AggSpec::count())
            .aggregate(AggSpec::sum(0))
            .run_collect()
            .unwrap()
            .rows;

        let qualifying: Vec<i64> = t
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .filter(|&v| v < threshold)
            .map(|v| v as i64)
            .collect();
        if qualifying.is_empty() {
            assert!(res.is_empty());
        } else {
            assert_eq!(res[0][0].as_num().unwrap(), qualifying.len() as i64);
            assert_eq!(res[0][1].as_num().unwrap(), qualifying.iter().sum::<i64>());
        }
    }
}

/// WOS inserts + merge behave like appending to the logical table.
#[test]
fn wos_merge_preserves_contents() {
    let mut done = 0u64;
    let mut seed = 0u64;
    while done < CASES {
        seed += 1;
        let mut rng = SplitMix64::new(0x305 + seed);
        let t = random_table(&mut rng);
        // Only schemas whose first column tolerates appended sorted values.
        if !t.schema.dtype(0).is_int() {
            continue;
        }
        done += 1;
        let extra = rng.range_usize(0, 20);
        let table = build(&t);
        let before = table.read_all(Layout::Row).unwrap();
        let mut wos = WriteOptimizedStore::new(t.schema.clone());
        let base = before
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .max()
            .unwrap_or(0);
        let mut inserted = Vec::new();
        for k in 0..extra {
            let mut row = Vec::new();
            for c in t.schema.columns() {
                row.push(match c.dtype {
                    DataType::Int => Value::Int(base + k as i32 + 1),
                    DataType::Text(_) => Value::text("a"),
                    DataType::Long => unreachable!(),
                });
            }
            wos.insert(row.clone()).unwrap();
            inserted.push(row);
        }
        let merged = wos.merge_into(&table, &t.comps, Some(0)).unwrap();
        assert_eq!(merged.row_count as usize, before.len() + extra);
        let after_row = merged.read_all(Layout::Row).unwrap();
        let after_col = merged.read_all(Layout::Column).unwrap();
        assert_eq!(&after_row, &after_col);
        // Sorted by column 0.
        for w in after_row.windows(2) {
            assert!(w[0][0] <= w[1][0]);
        }
    }
}

/// Pad a value to its column's stored width (what the engine hands back).
fn normalize(v: &Value, dt: DataType) -> Value {
    let mut buf = Vec::new();
    v.encode_into(dt, &mut buf).unwrap();
    Value::decode(dt, &buf).unwrap()
}
