//! Fault recovery must be *replayable*: with a positional fault injector,
//! the same configuration always damages the same page sites, so every
//! execution strategy — serial or parallel, scalar or vectorized — must
//! quarantine the identical page set, drop the identical rows, and produce
//! the identical degraded result. Mirrored reads must repair those same
//! sites back to the clean answer.

use rodb::prelude::{CmpOp, Database, QueryResult, ScanLayout};
use rodb::storage::{BuildLayouts, QuarantinedPage, Table, TableBuilder};
use rodb::types::{Column, FaultSpec, HardwareConfig, OnCorrupt, Schema, SystemConfig, Value};
use std::sync::Arc;

const ROWS: usize = 4000;
const PAGE: usize = 1024;
const FAULT_SEED: u64 = 7;

/// Three int columns, many 1 KiB pages in both representations. Values are
/// chosen so the `id >= 0` predicate matches every row: zone maps can never
/// skip a page, so all strategies demand every position and the quarantine
/// comparison is exact.
fn build() -> Table {
    let schema = Arc::new(
        Schema::new(vec![
            Column::int("id"),
            Column::int("val"),
            Column::int("neg"),
        ])
        .unwrap(),
    );
    let mut b = TableBuilder::new("t", schema, PAGE, BuildLayouts::both()).unwrap();
    for i in 0..ROWS {
        b.push_row(&[
            Value::Int(i as i32),
            Value::Int((i % 997) as i32),
            Value::Int(-(i as i32)),
        ])
        .unwrap();
    }
    b.finish().unwrap()
}

/// Run the full-match scan on a freshly built table and return the result
/// plus the table's quarantine snapshot (fresh table per run: the
/// quarantine is shared across clones of a handle, and replay determinism
/// is about independent executions).
fn run(
    layout: ScanLayout,
    threads: usize,
    fast: bool,
    mirror: usize,
    on_corrupt: OnCorrupt,
    rate_ppm: u32,
) -> (QueryResult, Vec<QuarantinedPage>) {
    let table = build();
    let quarantine = table.quarantine.clone();
    let sys = SystemConfig {
        page_size: PAGE,
        threads,
        scan_fast_path: fast,
        faults: Some(FaultSpec::at_rate(FAULT_SEED, rate_ppm)),
        mirror,
        on_corrupt,
        ..SystemConfig::default()
    };
    let mut db = Database::with_config(HardwareConfig::default(), sys).unwrap();
    db.register(table);
    let res = db
        .query("t")
        .unwrap()
        .layout(layout)
        .select(&["id", "val", "neg"])
        .unwrap()
        .filter("id", CmpOp::Ge, 0)
        .unwrap()
        .run_collect()
        .unwrap();
    (res, quarantine.snapshot())
}

#[test]
fn degraded_scan_is_identical_across_all_strategies() {
    for layout in [ScanLayout::Row, ScanLayout::Column] {
        let (base, base_q) = run(layout, 1, false, 1, OnCorrupt::Skip, 250_000);
        assert!(
            !base_q.is_empty(),
            "{layout:?}: the fault rate must quarantine something for this test to bite"
        );
        assert!(
            !base.rows.is_empty(),
            "{layout:?}: some pages must survive for this test to bite"
        );
        let rec = base.report.io.recovery;
        assert_eq!(rec.quarantined_pages, base_q.len() as u64);
        assert!(rec.dropped_rows > 0);
        assert_eq!(
            base.rows.len() as u64 + rec.dropped_rows,
            ROWS as u64,
            "{layout:?}: a full-match scan returns exactly the non-dropped rows"
        );
        // Every strategy must replay to the same rows, quarantine set, and
        // recovery counters (full-match predicates mean every position is
        // demanded, so even parallel drop accounting covers whole pages).
        for threads in [1usize, 4] {
            for fast in [false, true] {
                let (got, got_q) = run(layout, threads, fast, 1, OnCorrupt::Skip, 250_000);
                assert_eq!(
                    got.rows, base.rows,
                    "{layout:?}: rows diverged ({threads} threads, fast={fast})"
                );
                assert_eq!(
                    got_q, base_q,
                    "{layout:?}: quarantine diverged ({threads} threads, fast={fast})"
                );
                assert_eq!(
                    got.report.io.recovery, rec,
                    "{layout:?}: recovery counters diverged ({threads} threads, fast={fast})"
                );
            }
        }
    }
}

#[test]
fn degraded_single_iterator_layouts_replay_identically() {
    // ColumnSlow and ColumnSingleIterator execute serially; determinism here
    // is run-to-run replay of the same configuration.
    for layout in [ScanLayout::ColumnSlow, ScanLayout::ColumnSingleIterator] {
        let (a, a_q) = run(layout, 1, false, 1, OnCorrupt::Skip, 250_000);
        let (b, b_q) = run(layout, 1, false, 1, OnCorrupt::Skip, 250_000);
        assert!(!a_q.is_empty(), "{layout:?}: nothing quarantined");
        assert_eq!(a.rows, b.rows, "{layout:?}: replay rows diverged");
        assert_eq!(a_q, b_q, "{layout:?}: replay quarantine diverged");
        assert_eq!(a.report.io.recovery, b.report.io.recovery);
        assert_eq!(
            a.rows.len() as u64 + a.report.io.recovery.dropped_rows,
            ROWS as u64
        );
    }
}

#[test]
fn mirrored_reads_repair_the_same_sites_to_the_clean_answer() {
    for layout in [ScanLayout::Row, ScanLayout::Column] {
        // Clean baseline: no faults at all.
        let (clean, _) = run(layout, 1, false, 1, OnCorrupt::Fail, 0);
        assert_eq!(clean.rows.len(), ROWS);
        for threads in [1usize, 4] {
            for fast in [false, true] {
                let (got, q) = run(layout, threads, fast, 2, OnCorrupt::Retry, 1_000_000);
                assert_eq!(
                    got.rows, clean.rows,
                    "{layout:?}: mirrored repair changed the answer \
                     ({threads} threads, fast={fast})"
                );
                assert!(
                    q.is_empty(),
                    "{layout:?}: repaired pages must not be quarantined"
                );
                let rec = got.report.io.recovery;
                assert!(
                    rec.retries > 0,
                    "{layout:?}: every primary read was damaged"
                );
                assert_eq!(
                    rec.repairs, rec.retries,
                    "{layout:?}: replica 1 is always clean"
                );
                assert_eq!(rec.quarantined_pages, 0);
                assert_eq!(rec.dropped_rows, 0);
            }
        }
    }
}
